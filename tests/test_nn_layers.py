"""Layers: conv/pool against naive references, BN semantics, linear."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, no_grad
from repro.autograd.grad_check import numerical_gradient
from repro.nn.conv import col2im, conv_output_size, im2col


def naive_conv2d(x, w, b, stride, padding):
    """Direct-loop convolution used as a reference."""
    n, c_in, h, w_in = x.shape
    c_out, _, kh, kw = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    h_out = (x.shape[2] - kh) // stride + 1
    w_out = (x.shape[3] - kw) // stride + 1
    out = np.zeros((n, c_out, h_out, w_out))
    for i in range(h_out):
        for j in range(w_out):
            patch = x[:, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
            out[:, :, i, j] = np.einsum("nchw,ochw->no", patch, w)
    if b is not None:
        out += b.reshape(1, -1, 1, 1)
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1), (3, 2)])
    def test_matches_naive(self, rng, stride, padding):
        x = rng.normal(size=(2, 3, 9, 9))
        conv = nn.Conv2d(3, 4, 3, stride=stride, padding=padding)
        expected = naive_conv2d(x, conv.weight.data, conv.bias.data, stride, padding)
        with no_grad():
            actual = conv(Tensor(x)).data
        assert np.allclose(actual, expected, atol=1e-10)

    def test_no_bias(self, rng):
        conv = nn.Conv2d(2, 3, 3, bias=False)
        assert conv.bias is None
        x = rng.normal(size=(1, 2, 5, 5))
        expected = naive_conv2d(x, conv.weight.data, None, 1, 0)
        with no_grad():
            assert np.allclose(conv(Tensor(x)).data, expected, atol=1e-10)

    def test_gradients(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 6, 6)), requires_grad=True)
        conv = nn.Conv2d(2, 3, 3, stride=2, padding=1)

        def f(x):
            return (conv(x) ** 2).mean()

        f(x).backward()
        for target, analytic in [
            (x, x.grad),
            (conv.weight, conv.weight.grad),
            (conv.bias, conv.bias.grad),
        ]:
            assert analytic is not None
        num = numerical_gradient(f, [x], 0)
        assert np.allclose(x.grad, num, atol=1e-5)

    def test_weight_gradient_numeric(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 5, 5)))
        conv = nn.Conv2d(2, 2, 3)

        def f(w):
            conv.weight.data = w.data
            return (conv(x) ** 2).mean()

        w = Tensor(conv.weight.data.copy(), requires_grad=True)
        out = (conv(x) ** 2).mean()
        out.backward()
        analytic = conv.weight.grad
        num = numerical_gradient(f, [w], 0)
        assert np.allclose(analytic, num, atol=1e-5)

    def test_output_shape_helper(self):
        conv = nn.Conv2d(3, 8, 3, stride=2, padding=1)
        assert conv.output_shape((32, 32)) == (8, 16, 16)

    def test_flops_positive(self):
        conv = nn.Conv2d(3, 8, 3, padding=1)
        assert conv.flops_per_input((8, 8)) == 2 * 3 * 9 * 8 * 64


class TestIm2col:
    def test_round_trip_counts(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        cols = im2col(x, (2, 2), 2, 0)
        assert cols.shape == (1, 2, 2, 4)
        # Non-overlapping stride: col2im of ones recovers ones.
        back = col2im(np.ones_like(cols), x.shape, (2, 2), 2, 0)
        assert np.allclose(back, 1.0)

    def test_overlap_accumulates(self, rng):
        x_shape = (1, 1, 3, 3)
        cols = np.ones((1, 2, 2, 4))  # kernel 2, stride 1
        back = col2im(cols, x_shape, (2, 2), 1, 0)
        # Center pixel belongs to all four patches.
        assert back[0, 0, 1, 1] == pytest.approx(4.0)
        assert back[0, 0, 0, 0] == pytest.approx(1.0)

    def test_output_size(self):
        assert conv_output_size(32, 3, 1, 1) == 32
        assert conv_output_size(32, 3, 2, 1) == 16
        assert conv_output_size(28, 5, 1, 0) == 24


class TestPooling:
    def test_maxpool_matches_naive(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        pool = nn.MaxPool2d(2)
        with no_grad():
            out = pool(Tensor(x)).data
        expected = x.reshape(2, 3, 4, 2, 4, 2).max(axis=(3, 5))
        assert np.allclose(out, expected)

    def test_maxpool_stride_not_kernel(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        pool = nn.MaxPool2d(3, stride=2)
        with no_grad():
            out = pool(Tensor(x)).data
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 0, 0] == x[0, 0, :3, :3].max()

    def test_maxpool_gradient(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 6, 6)), requires_grad=True)
        pool = nn.MaxPool2d(2)

        def f(x):
            return (pool(x) ** 2).sum()

        f(x).backward()
        num = numerical_gradient(f, [x], 0)
        assert np.allclose(x.grad, num, atol=1e-5)

    def test_avgpool_matches_naive(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        pool = nn.AvgPool2d(2)
        with no_grad():
            out = pool(Tensor(x)).data
        expected = x.reshape(2, 3, 4, 2, 4, 2).mean(axis=(3, 5))
        assert np.allclose(out, expected)

    def test_avgpool_gradient(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        pool = nn.AvgPool2d(2)

        def f(x):
            return (pool(x) ** 2).sum()

        f(x).backward()
        num = numerical_gradient(f, [x], 0)
        assert np.allclose(x.grad, num, atol=1e-5)

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 5, 4, 4))
        with no_grad():
            out = nn.GlobalAvgPool2d()(Tensor(x)).data
        assert out.shape == (2, 5)
        assert np.allclose(out, x.mean(axis=(2, 3)))


class TestLinear:
    def test_forward(self, rng):
        layer = nn.Linear(4, 3)
        x = rng.normal(size=(5, 4))
        with no_grad():
            out = layer(Tensor(x)).data
        assert np.allclose(out, x @ layer.weight.data.T + layer.bias.data)

    def test_gradient(self, rng):
        layer = nn.Linear(3, 2)
        x = Tensor(rng.normal(size=(4, 3)), requires_grad=True)

        def f(x):
            return (layer(x) ** 2).mean()

        f(x).backward()
        num = numerical_gradient(f, [x], 0)
        assert np.allclose(x.grad, num, atol=1e-6)
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_flops(self):
        assert nn.Linear(10, 20).flops_per_input() == 400


class TestBatchNorm:
    def test_train_normalizes_batch(self, rng):
        bn = nn.BatchNorm2d(3)
        x = rng.normal(loc=5.0, scale=3.0, size=(8, 3, 4, 4))
        out = bn(Tensor(x)).data
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        assert np.allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_update(self, rng):
        bn = nn.BatchNorm2d(2, momentum=0.5)
        x = rng.normal(loc=2.0, size=(16, 2, 3, 3))
        bn(Tensor(x))
        assert np.all(bn.running_mean > 0.5)

    def test_eval_uses_running_stats(self, rng):
        bn = nn.BatchNorm2d(2)
        x = rng.normal(size=(8, 2, 3, 3))
        for _ in range(20):
            bn(Tensor(x))
        bn.eval()
        out_eval = bn(Tensor(x)).data
        # After many identical batches, running stats converge to batch stats.
        assert np.allclose(out_eval.mean(axis=(0, 2, 3)), 0.0, atol=0.05)

    def test_eval_is_deterministic_function(self, rng):
        bn = nn.BatchNorm2d(2)
        bn(Tensor(rng.normal(size=(4, 2, 3, 3))))
        bn.eval()
        x = rng.normal(size=(1, 2, 3, 3))
        a = bn(Tensor(x)).data
        b = bn(Tensor(x)).data
        assert np.array_equal(a, b)

    def test_rejects_non_4d(self):
        with pytest.raises(ValueError):
            nn.BatchNorm2d(2)(Tensor(np.zeros((3, 2))))

    def test_gradient_flows_to_affine_params(self, rng):
        bn = nn.BatchNorm2d(2)
        x = Tensor(rng.normal(size=(4, 2, 3, 3)), requires_grad=True)
        (bn(x) ** 2).sum().backward()
        assert bn.weight.grad is not None
        assert bn.bias.grad is not None
        assert x.grad is not None


class TestContainersAndActivations:
    def test_sequential_order(self, rng):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        x = rng.normal(size=(3, 4))
        with no_grad():
            out = model(Tensor(x))
        assert out.shape == (3, 2)
        assert len(model) == 3

    def test_sequential_getitem_iter(self):
        model = nn.Sequential(nn.ReLU(), nn.Tanh())
        assert isinstance(model[0], nn.ReLU)
        assert [type(m).__name__ for m in model] == ["ReLU", "Tanh"]

    def test_sequential_append(self):
        model = nn.Sequential(nn.ReLU())
        model.append(nn.Tanh())
        assert len(model) == 2

    def test_flatten_module(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        with no_grad():
            out = nn.Flatten()(Tensor(x))
        assert out.shape == (2, 48)

    def test_tanh_gradient(self, rng):
        from repro.autograd import gradcheck

        x = Tensor(rng.normal(size=(5,)), requires_grad=True)
        assert gradcheck(lambda x: (nn.Tanh()(x) ** 2).sum(), [x])
