"""Module system: registration, traversal, state dicts, modes."""

import numpy as np
import pytest

from repro import nn
from repro.nn.module import Module, Parameter


class Toy(Module):
    def __init__(self):
        super().__init__()
        self.fc = nn.Linear(2, 3)
        self.scale = Parameter(np.ones(3))
        self.register_buffer("counter", np.zeros(1))

    def forward(self, x):
        return self.fc(x) * self.scale


class TestRegistration:
    def test_parameters_found(self):
        toy = Toy()
        names = dict(toy.named_parameters())
        assert set(names) == {"scale", "fc.weight", "fc.bias"}

    def test_num_parameters(self):
        toy = Toy()
        assert toy.num_parameters() == 2 * 3 + 3 + 3

    def test_modules_traversal(self):
        toy = Toy()
        classes = [type(m).__name__ for m in toy.modules()]
        assert classes == ["Toy", "Linear"]

    def test_named_modules(self):
        toy = Toy()
        names = [name for name, _ in toy.named_modules()]
        assert "fc" in names

    def test_children(self):
        toy = Toy()
        assert len(list(toy.children())) == 1

    def test_apply(self):
        toy = Toy()
        seen = []
        toy.apply(lambda m: seen.append(type(m).__name__))
        assert seen == ["Toy", "Linear"]


class TestModes:
    def test_train_eval_propagate(self):
        toy = Toy()
        toy.eval()
        assert not toy.training
        assert not toy.fc.training
        toy.train()
        assert toy.fc.training

    def test_zero_grad(self):
        toy = Toy()
        for p in toy.parameters():
            p.grad = np.ones_like(p.data)
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())


class TestStateDict:
    def test_round_trip(self):
        toy = Toy()
        state = toy.state_dict()
        assert set(state) == {"scale", "counter", "fc.weight", "fc.bias"}
        other = Toy()
        other.load_state_dict(state)
        assert np.array_equal(other.fc.weight.data, toy.fc.weight.data)

    def test_state_dict_copies(self):
        toy = Toy()
        state = toy.state_dict()
        state["scale"][:] = 99.0
        assert not np.any(toy.scale.data == 99.0)

    def test_missing_key_raises(self):
        toy = Toy()
        state = toy.state_dict()
        del state["fc.weight"]
        with pytest.raises(KeyError):
            Toy().load_state_dict(state)

    def test_buffers_round_trip(self):
        toy = Toy()
        toy.set_buffer("counter", np.array([5.0]))
        other = Toy()
        other.load_state_dict(toy.state_dict())
        assert other.counter[0] == 5.0

    def test_set_unknown_buffer_raises(self):
        with pytest.raises(KeyError):
            Toy().set_buffer("nope", np.zeros(1))


class TestBatchNormStateDict:
    def test_running_stats_serialized(self, rng):
        from repro.autograd import Tensor

        bn = nn.BatchNorm2d(2)
        bn(Tensor(rng.normal(loc=3.0, size=(8, 2, 3, 3))))
        clone = nn.BatchNorm2d(2)
        clone.load_state_dict(bn.state_dict())
        assert np.allclose(clone.running_mean, bn.running_mean)
        assert np.allclose(clone.running_var, bn.running_var)
