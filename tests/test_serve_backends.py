"""Serving through ``repro.backends``: parity, lifecycle, energy, shims.

The centerpiece is the backend parity suite: the circuit-level
``PimChip`` backend and the fake-quant backend must realize the *same
physical chip* from the same sampled variation, all the way through
``InferenceEngine.run_trace``.  The bit-exact test pins the arithmetic
regime where floating point is exact (power-of-two quantization scales,
epsilon draws rounded to a dyadic grid), so any deviation — a wrong
epsilon key, a transposed tile, an off-by-one in the differential
mapping — fails loudly instead of hiding inside a tolerance.
"""

import copy

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.backends import CircuitBackend, FakeQuantBackend
from repro.datasets.loaders import batch_iterator
from repro.datasets.synthetic import make_pattern_dataset
from repro.models import build_model
from repro.nn import init
from repro.quant.calibration import calibrate_model
from repro.quant.ptq import convert_to_quantized, quantized_layers
from repro.quant.qconfig import QConfig
from repro.serve import (
    ChipLifecycle,
    InferenceEngine,
    LifecycleConfig,
    ServeConfig,
    UniformTrace,
)
from repro.variability.models import WeightProportionalVariance
from repro.variability.sampler import VariabilitySpec


def _make_model(num_classes=5, notation="A4W2"):
    init.seed(0)
    dataset = make_pattern_dataset(
        num_classes, 16, (1, 28, 28), seed=7, max_shift=1, noise=0.2
    )
    model = build_model("lenet5-mini", num_classes=num_classes, in_channels=1)
    convert_to_quantized(model, QConfig.from_notation(notation))
    calibrate_model(model, batch_iterator(dataset, 16, shuffle=False), max_batches=3)
    model.eval()
    return model, dataset


@pytest.fixture(scope="module")
def served_model():
    return _make_model()


def _spec(sigma=0.2):
    return VariabilitySpec.mixed(sigma, WeightProportionalVariance())


def _engine(model, backend, spec=None, num_chips=2, **config):
    config.setdefault("max_batch", 8)
    config.setdefault("max_wait", 2)
    return InferenceEngine(
        model,
        spec or _spec(),
        num_chips=num_chips,
        config=ServeConfig(backend=backend, **config),
    )


def _force_pow2_scales(model) -> None:
    """Snap quantization scales to powers of two (shift-friendly hardware).

    Power-of-two scaling commutes exactly with float rounding, which makes
    the fake-quant and circuit arithmetic bit-comparable.
    """
    for _, layer in quantized_layers(model):
        for name in ("weight_scale", "act_scale"):
            value = float(getattr(layer, name))
            layer.set_buffer(name, np.array(2.0 ** np.floor(np.log2(value))))


def _dyadicize_fleet(engine, model, grid=64.0) -> None:
    """Round every fleet chip's epsilon draws onto a ``1/grid`` dyadic grid.

    Dyadic epsilons keep all products/sums inside exact float arithmetic,
    so the two backends' different summation orders (differential columns,
    tiling) cannot introduce ULP noise — the chips stay physically
    realistic but the cross-check becomes exact.
    """
    for chip in engine.fleet:
        variation = chip.variation
        variation.eps_between = round(variation.eps_between * grid) / grid
        for name, layer in quantized_layers(model):
            pattern = variation.within_pattern(name, layer.weight.data.shape)
            variation._cache[name] = np.round(pattern * grid) / grid


class TestBitExactParity:
    """Acceptance: circuit vs fake-quant, bit-identical through run_trace."""

    def test_run_trace_outputs_bit_identical(self):
        model, dataset = _make_model()
        _force_pow2_scales(model)
        requests = 24
        workload = np.concatenate([dataset.images] * 2)[:requests]
        ids = [f"r{i:04d}" for i in range(requests)]
        outputs = {}
        for backend in ("fake-quant", CircuitBackend(array_rows=64, array_cols=64)):
            engine = _engine(model, backend, seed=11)
            _dyadicize_fleet(engine, model)
            outputs[engine.backend.name] = engine.run_trace(
                workload, UniformTrace(rate=6), ids=ids
            )
        for rid in ids:
            assert np.array_equal(
                outputs["fake-quant"][rid], outputs["circuit"][rid]
            ), f"{rid}: circuit and fake-quant disagree bit-for-bit"

    def test_bit_exactness_sees_real_variation(self):
        """The exact regime must not be vacuous: the dyadic chips still
        perturb outputs relative to the variation-free model."""
        model, dataset = _make_model()
        _force_pow2_scales(model)
        engine = _engine(model, "fake-quant", seed=11)
        _dyadicize_fleet(engine, model)
        x = dataset.images[:8]
        with no_grad():
            clean = model(Tensor(x)).data
        programmed = engine.programmed_for(engine.fleet[0])
        assert not np.array_equal(programmed.forward(x), clean)

    def test_tiled_deployment_stays_bit_identical(self):
        """Tiny arrays force multi-tile layers; the layer-epsilon slicing
        across tiles must not change the realized chip."""
        model, dataset = _make_model()
        _force_pow2_scales(model)
        x = dataset.images[:6]
        results = []
        for rows, cols in [(64, 64), (16, 16)]:
            engine = _engine(
                model, CircuitBackend(array_rows=rows, array_cols=cols), seed=3
            )
            _dyadicize_fleet(engine, model)
            results.append(engine.programmed_for(engine.fleet[0]).forward(x))
        assert np.array_equal(results[0], results[1])


class TestRealisticParity:
    """With MMSE scales and Gaussian epsilons, parity holds to float noise."""

    def test_run_trace_outputs_agree(self, served_model):
        model, dataset = served_model
        requests = 24
        workload = np.concatenate([dataset.images] * 2)[:requests]
        ids = [f"r{i:04d}" for i in range(requests)]
        fq = _engine(model, "fake-quant", spec=_spec(0.3), seed=5).run_trace(
            workload, UniformTrace(rate=6), ids=ids
        )
        hw = _engine(
            model, CircuitBackend(array_rows=64, array_cols=64), spec=_spec(0.3), seed=5
        ).run_trace(workload, UniformTrace(rate=6), ids=ids)
        for rid in ids:
            assert np.allclose(fq[rid], hw[rid], atol=1e-9)
            assert np.argmax(fq[rid]) == np.argmax(hw[rid])

    def test_probed_quality_agrees(self, served_model):
        model, dataset = served_model
        fq = _engine(model, "fake-quant", seed=2)
        hw = _engine(model, CircuitBackend(array_rows=64, array_cols=64), seed=2)
        assert fq.probe_fleet(dataset) == pytest.approx(hw.probe_fleet(dataset))


class TestEngineBackendIntegration:
    def test_cache_keys_differ_per_backend(self, served_model):
        model, _ = served_model
        fq = _engine(model, "fake-quant", seed=1)
        hw = _engine(model, "circuit", seed=1)
        for chip_fq, chip_hw in zip(fq.fleet, hw.fleet):
            assert chip_fq.chip_id == chip_hw.chip_id
            assert fq.key_for(chip_fq) != hw.key_for(chip_hw)
            assert fq.key_for(chip_fq)[-1] == chip_fq.chip_id

    def test_reprogram_is_surgical(self, served_model):
        model, _ = served_model
        engine = _engine(model, "fake-quant", num_chips=3, seed=1)
        engine.warm_up()
        keep = engine.programmed_for(engine.fleet[1])
        assert engine.reprogram(engine.fleet[0]) == 1
        assert engine.programmed_for(engine.fleet[1]) is keep
        assert engine.reprogram(engine.fleet[0]) == 1  # fresh entry each time

    def test_engine_repr_names_backend(self, served_model):
        model, _ = served_model
        assert "backend='circuit'" in repr(_engine(model, "circuit"))

    def test_energy_telemetry_accumulates(self, served_model):
        model, dataset = served_model
        engine = _engine(model, "fake-quant", seed=4)
        engine.run(dataset.images[:16], ids=[f"r{i}" for i in range(16)])
        telemetry = engine.telemetry
        assert telemetry.total_energy_uj > 0
        assert telemetry.energy_per_request_uj > 0
        per_chip = sum(telemetry.per_chip_energy_uj.values())
        assert per_chip == pytest.approx(telemetry.total_energy_uj)
        assert sum(chip.energy_uj for chip in engine.fleet) == pytest.approx(
            telemetry.total_energy_uj
        )
        report = telemetry.report()["energy_uj"]
        assert report["total"] == pytest.approx(telemetry.total_energy_uj)
        assert "uJ" in telemetry.format()

    def test_costless_backend_serves_without_energy(self, served_model):
        model, dataset = served_model
        engine = _engine(model, FakeQuantBackend(costed=False), seed=4)
        engine.run(dataset.images[:8], ids=[f"r{i}" for i in range(8)])
        assert engine.telemetry.total_energy_uj == 0.0
        assert "energy" not in engine.telemetry.format()

    def test_energy_aware_policy_serves_through_engine(self, served_model):
        model, dataset = served_model
        engine = _engine(model, "fake-quant", policy="energy-aware", seed=4)
        engine.probe_fleet(dataset)
        outputs = engine.run(dataset.images[:16], ids=[f"r{i}" for i in range(16)])
        assert len(outputs) == 16


class TestCircuitLifecycle:
    """Recalibration reprograms circuit chips through their owning backend."""

    def _drifting_run(self, policy="drift-aware"):
        model, dataset = _make_model()
        engine = _engine(
            model,
            CircuitBackend(array_rows=64, array_cols=64),
            spec=_spec(0.3),
            num_chips=2,
            policy=policy,
            seed=6,
        )
        lifecycle = ChipLifecycle(
            engine,
            dataset,
            LifecycleConfig(
                drift="aging", nu=0.8, dt=1.0, probe_every=4.0,
                accuracy_floor=0.98, seed=6,
            ),
        )
        lifecycle.install()
        requests = 48
        workload = np.concatenate([dataset.images] * 3)[:requests]
        ids = [f"r{i:04d}" for i in range(requests)]
        outputs = engine.run_trace(
            workload, UniformTrace(rate=4), ids=ids, lifecycle=lifecycle
        )
        return engine, lifecycle, outputs, ids

    @pytest.mark.slow
    def test_recalibration_fires_and_serving_completes(self):
        engine, lifecycle, outputs, ids = self._drifting_run()
        assert len(outputs) == len(ids)
        assert len(lifecycle.events) > 0
        assert engine.cache.stats.invalidations >= len(lifecycle.events)
        for event in lifecycle.events:
            assert event.quality_after >= event.quality_before

    @pytest.mark.slow
    def test_recalibration_schedule_is_deterministic(self):
        first = self._drifting_run()
        second = self._drifting_run()
        assert [e.chip_id for e in first[1].events] == [
            e.chip_id for e in second[1].events
        ]
        assert all(
            np.array_equal(first[2][rid], second[2][rid]) for rid in first[3]
        )


class TestCompatibilityShims:
    """Pre-redesign import paths and accessors keep working."""

    def test_serve_backends_module_reexports(self):
        from repro.serve import backends as shim

        assert shim.FakeQuantBackend is FakeQuantBackend
        assert shim.CircuitBackend is CircuitBackend
        assert shim.make_backend("fake-quant").name == "fake-quant"

    def test_serve_package_exports_backend_api(self):
        import repro.serve as serve

        for name in ("ChipBackend", "ProgrammedChip", "BACKENDS", "make_backend"):
            assert hasattr(serve, name)

    def test_mapping_key_defaults_to_fake_quant(self):
        from repro.serve.cache import mapping_key

        assert mapping_key("m", "q", "c") == ("m", "q", "fake-quant", "c")

    def test_legacy_mapping_accessor_returns_module(self, served_model):
        model, dataset = served_model
        engine = _engine(model, "fake-quant", seed=8)
        mapping = engine._mapping_for(engine.fleet[0])
        with no_grad():
            logits = mapping(Tensor(dataset.images[:2])).data
        assert logits.shape == (2, 5)

    def test_legacy_deepcopy_still_possible(self, served_model):
        """Downstream code that deep-copied programmed mappings must not
        break on the structure-shared replicas."""
        model, _ = served_model
        engine = _engine(model, "fake-quant", seed=8)
        copy.deepcopy(engine.programmed_for(engine.fleet[0]).mapping)
