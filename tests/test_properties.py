"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor
from repro.autograd.function import unbroadcast
from repro.quant import QuantSpec, dequantize, fake_quantize, minmax_scale, mmse_scale, quantize
from repro.quant.scaling import quantization_mse
from repro.variability.sampler import ChipVariation

finite_arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=2, min_side=1, max_side=40),
    elements=st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False),
)

bits = st.integers(min_value=2, max_value=8)
scales = st.floats(min_value=1e-3, max_value=10.0, allow_nan=False)


class TestQuantizerProperties:
    @given(x=finite_arrays, k=bits, scale=scales)
    @settings(max_examples=60, deadline=None)
    def test_codes_within_symmetric_range(self, x, k, scale):
        spec = QuantSpec(k)
        codes = quantize(x, scale, spec)
        assert codes.min() >= spec.qmin
        assert codes.max() <= spec.qmax

    @given(x=finite_arrays, k=bits, scale=scales)
    @settings(max_examples=60, deadline=None)
    def test_codes_are_integers(self, x, k, scale):
        codes = quantize(x, scale, QuantSpec(k))
        assert np.array_equal(codes, np.rint(codes))

    @given(x=finite_arrays, k=bits, scale=scales)
    @settings(max_examples=60, deadline=None)
    def test_quantization_idempotent(self, x, k, scale):
        spec = QuantSpec(k)
        once = dequantize(quantize(x, scale, spec), scale)
        twice = dequantize(quantize(once, scale, spec), scale)
        assert np.allclose(once, twice)

    @given(x=finite_arrays, k=bits, scale=scales)
    @settings(max_examples=60, deadline=None)
    def test_fake_quant_matches_quantize_dequantize(self, x, k, scale):
        spec = QuantSpec(k)
        via_tensor = fake_quantize(Tensor(x), scale, spec).data
        direct = dequantize(quantize(x, scale, spec), scale)
        assert np.allclose(via_tensor, direct)

    @given(x=finite_arrays, k=bits)
    @settings(max_examples=40, deadline=None)
    def test_mmse_never_worse_than_minmax(self, x, k):
        spec = QuantSpec(k)
        mmse = quantization_mse(x, mmse_scale(x, spec), spec)
        naive = quantization_mse(x, minmax_scale(x, spec), spec)
        assert mmse <= naive + 1e-12

    @given(x=finite_arrays, k=bits, scale=scales)
    @settings(max_examples=40, deadline=None)
    def test_quantization_is_contraction_toward_grid(self, x, k, scale):
        # |Q(x) - x| <= max(lsb/2, distance to the clip boundary): the error
        # of values inside the representable range is at most half an LSB.
        spec = QuantSpec(k)
        bound = spec.qmax * scale
        inside = np.abs(x) <= bound
        err = np.abs(dequantize(quantize(x, scale, spec), scale) - x)
        assert np.all(err[inside] <= scale / 2 + 1e-9)


class TestUnbroadcastProperties:
    @given(
        shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=5),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_unbroadcast_inverts_broadcast(self, shape, data):
        # For any original shape and a broadcast of it, unbroadcast returns
        # the correct gradient shape and sums contributions.
        original = np.ones(shape)
        extra = data.draw(st.integers(min_value=1, max_value=4))
        broadcast_shape = (extra,) + shape
        grad = np.ones(broadcast_shape)
        out = unbroadcast(grad, shape)
        assert out.shape == shape
        assert np.allclose(out, extra)


class TestVariabilityProperties:
    @given(
        eps_b=st.floats(-0.5, 0.5, allow_nan=False),
        sigma_w=st.floats(0.0, 0.5, allow_nan=False),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_chip_epsilon_statistics(self, eps_b, sigma_w, seed):
        chip = ChipVariation(eps_b, sigma_w, seed)
        eps = chip.epsilon_for("layer", (4000,))
        # Sample mean concentrates around eps_b (6-sigma bound).
        tolerance = 6 * max(sigma_w, 1e-9) / np.sqrt(4000) + 1e-12
        assert abs(eps.mean() - eps_b) <= tolerance
        if sigma_w == 0.0:
            assert np.allclose(eps, eps_b)

    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_gtm_estimate_error_bounded(self, seed):
        from repro.selftuning import GlobalTuningModule

        chip = ChipVariation(0.1, 0.2, seed)
        gtm = GlobalTuningModule(num_cells=10_000)
        # 6-sigma bound on the estimation error.
        assert abs(gtm.estimate(chip) - 0.1) < 6 * 0.2 / np.sqrt(10_000)


class TestTensorAlgebraProperties:
    @given(x=finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_sum_matches_numpy(self, x):
        assert np.allclose(Tensor(x).sum().data, x.sum())

    @given(x=finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_relu_idempotent(self, x):
        t = Tensor(x)
        once = t.relu()
        twice = once.relu()
        assert np.array_equal(once.data, twice.data)

    @given(x=finite_arrays)
    @settings(max_examples=40, deadline=None)
    def test_double_negation(self, x):
        assert np.allclose((-(-Tensor(x))).data, x)
