"""Tensor mechanics: graph construction, backward, modes."""

import numpy as np
import pytest

from repro.autograd import Tensor, is_grad_enabled, no_grad, tensor


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_from_tensor_copies_reference(self):
        a = Tensor([1.0])
        b = Tensor(a)
        assert np.array_equal(a.data, b.data)

    def test_factory(self):
        t = tensor([[1.0, 2.0]], requires_grad=True)
        assert t.requires_grad
        assert t.shape == (1, 2)

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))


class TestBackward:
    def test_simple_chain(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + 1.0
        y.backward()
        assert x.grad[0] == pytest.approx(3.0)

    def test_grad_accumulates_across_backward_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).backward()
        (x * 2.0).backward()
        assert x.grad[0] == pytest.approx(4.0)

    def test_diamond_graph_sums_paths(self):
        # y = x*x + x*x has gradient 4x through two paths sharing x.
        x = Tensor([3.0], requires_grad=True)
        a = x * x
        b = x * x
        (a + b).backward()
        assert x.grad[0] == pytest.approx(12.0)

    def test_reused_intermediate(self):
        x = Tensor([2.0], requires_grad=True)
        shared = x * 2.0
        out = shared * shared  # (2x)^2 -> d/dx = 8x
        out.backward()
        assert x.grad[0] == pytest.approx(16.0)

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_custom_seed_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2.0
        y.backward(np.array([1.0, 10.0]))
        assert np.allclose(x.grad, [2.0, 20.0])

    def test_no_grad_through_constants(self):
        x = Tensor([1.0], requires_grad=True)
        c = Tensor([5.0])
        (x * c).backward()
        assert c.grad is None

    def test_deep_chain_does_not_recurse(self):
        # Iterative topological sort must survive graphs deeper than the
        # python recursion limit.
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.backward()
        assert x.grad[0] == pytest.approx(1.0)


class TestGradMode:
    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._ctx is None

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_detach_shares_data(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        d = x.detach()
        assert not d.requires_grad
        assert d.data is x.data


class TestOperatorSugar:
    def test_radd_rsub_rmul_rdiv(self):
        x = Tensor([4.0], requires_grad=True)
        y = (1.0 + x) * 2.0
        z = 10.0 - y
        w = 8.0 / x
        assert y.data[0] == pytest.approx(10.0)
        assert z.data[0] == pytest.approx(0.0)
        assert w.data[0] == pytest.approx(2.0)

    def test_neg(self):
        x = Tensor([1.5], requires_grad=True)
        (-x).backward()
        assert x.grad[0] == pytest.approx(-1.0)

    def test_matmul_operator(self):
        a = Tensor(np.eye(2), requires_grad=True)
        b = Tensor([[1.0], [2.0]])
        out = a @ b
        assert out.shape == (2, 1)

    def test_transpose_property(self):
        a = Tensor(np.zeros((2, 3)))
        assert a.T.shape == (3, 2)

    def test_flatten(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.flatten(1).shape == (2, 12)
        assert a.flatten(0).shape == (24,)

    def test_getitem_gradient(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        x[0, 1].backward()
        expected = np.zeros((2, 3))
        expected[0, 1] = 1.0
        assert np.allclose(x.grad, expected)

    def test_item(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)
