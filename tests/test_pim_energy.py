"""Tests for the event-based energy/latency/area cost model."""

import numpy as np
import pytest

from repro.models import build_model
from repro.pim.energy import (
    CostModel,
    CostReport,
    LayerGeometry,
    PimCostEstimator,
    digital_baseline_cost,
    geometries_from_model,
)
from repro.quant import QConfig, calibrate_model, convert_to_quantized


class TestEstimatorSetup:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            PimCostEstimator(array_rows=0)
        with pytest.raises(ValueError):
            PimCostEstimator(adcs_per_array=0)

    def test_logical_columns_account_for_differential_and_slicing(self):
        estimator = PimCostEstimator(array_cols=512, weight_slices=2, differential=True)
        assert estimator.logical_cols_per_array == 128
        estimator = PimCostEstimator(array_cols=512, weight_slices=1, differential=False)
        assert estimator.logical_cols_per_array == 512

    def test_arrays_for_small_layer(self):
        estimator = PimCostEstimator(array_rows=512, array_cols=512, weight_slices=1)
        geometry = LayerGeometry(d_in=100, d_out=100)
        assert estimator.arrays_for(geometry) == 1

    def test_arrays_for_large_layer(self):
        estimator = PimCostEstimator(array_rows=512, array_cols=512, weight_slices=1)
        geometry = LayerGeometry(d_in=1024, d_out=300)
        # 2 row tiles x 2 column tiles (256 logical cols per array).
        assert estimator.arrays_for(geometry) == 4


class TestLayerCost:
    def test_all_costs_positive(self):
        estimator = PimCostEstimator()
        report = estimator.layer_cost(LayerGeometry(128, 64, mvm_count=10))
        assert report.energy_pj > 0
        assert report.latency_ns > 0
        assert report.area_um2 > 0
        assert report.adc_conversions > 0

    def test_energy_scales_with_mvm_count(self):
        estimator = PimCostEstimator()
        one = estimator.layer_cost(LayerGeometry(128, 64, mvm_count=1))
        ten = estimator.layer_cost(LayerGeometry(128, 64, mvm_count=10))
        assert ten.energy_pj == pytest.approx(10 * one.energy_pj)
        assert ten.latency_ns == pytest.approx(10 * one.latency_ns)

    def test_bit_serial_multiplies_cycles(self):
        fast = PimCostEstimator(input_cycles=1)
        slow = PimCostEstimator(input_cycles=8)
        geometry = LayerGeometry(128, 64)
        assert slow.layer_cost(geometry).energy_pj == pytest.approx(
            8 * fast.layer_cost(geometry).energy_pj
        )

    def test_adc_sharing_trades_latency_for_area(self):
        few_adcs = PimCostEstimator(adcs_per_array=4)
        many_adcs = PimCostEstimator(adcs_per_array=64)
        geometry = LayerGeometry(256, 128)
        assert (
            few_adcs.layer_cost(geometry).latency_ns
            > many_adcs.layer_cost(geometry).latency_ns
        )
        assert (
            few_adcs.layer_cost(geometry).area_um2
            < many_adcs.layer_cost(geometry).area_um2
        )

    def test_model_cost_accumulates_breakdown(self):
        estimator = PimCostEstimator()
        layers = [LayerGeometry(64, 32, name="a"), LayerGeometry(32, 10, name="b")]
        total = estimator.model_cost(layers)
        assert set(total.breakdown) == {"a", "b"}
        assert total.energy_pj == pytest.approx(
            sum(r.energy_pj for r in total.breakdown.values())
        )


class TestSelfTuningCost:
    def test_ltm_cost_scales_with_columns(self):
        estimator = PimCostEstimator()
        layers = [LayerGeometry(128, 64)]
        one = estimator.self_tuning_cost(layers, gtm_cells=1000, ltm_columns=1)
        sixteen = estimator.self_tuning_cost(layers, gtm_cells=1000, ltm_columns=16)
        assert sixteen.energy_pj > one.energy_pj
        assert sixteen.area_um2 > one.area_um2

    def test_self_tuning_is_small_fraction(self):
        """The paper's overhead story: ST costs percent-level, not more."""
        estimator = PimCostEstimator()
        layers = [LayerGeometry(512, 512, mvm_count=64) for _ in range(8)]
        base = estimator.model_cost(layers)
        tuning = estimator.self_tuning_cost(layers, gtm_cells=1000, ltm_columns=1)
        assert tuning.energy_pj / base.energy_pj < 0.05

    def test_gtm_read_once_per_inference(self):
        estimator = PimCostEstimator()
        no_layers = estimator.self_tuning_cost([], gtm_cells=10_000, ltm_columns=1)
        assert no_layers.adc_conversions == 1
        assert no_layers.energy_pj == pytest.approx(
            10_000 * estimator.cost.energy_cell_mac + estimator.cost.energy_adc
        )


class TestDigitalBaseline:
    def test_pim_beats_digital_on_energy(self):
        """The motivating claim of analog PIM (paper ref [1])."""
        layers = [LayerGeometry(512, 512, mvm_count=32)]
        pim = PimCostEstimator(input_cycles=8).model_cost(layers)
        digital = digital_baseline_cost(layers)
        assert pim.energy_pj < digital.energy_pj

    def test_digital_energy_formula(self):
        cost = CostModel(energy_digital_mac=1.0)
        report = digital_baseline_cost([LayerGeometry(10, 10, mvm_count=2)], cost)
        assert report.energy_pj == pytest.approx(200.0)


class TestGeometryExtraction:
    def test_geometries_from_quantized_model(self):
        model = build_model("lenet5-mini")
        model = convert_to_quantized(model, QConfig.from_notation("A4W4"))
        rng = np.random.default_rng(0)
        calibrate_model(model, [rng.normal(size=(4, 1, 28, 28))])
        geometries = geometries_from_model(model, (1, 28, 28))
        assert len(geometries) >= 3  # convs + linears
        assert all(g.d_in > 0 and g.d_out > 0 and g.mvm_count >= 1 for g in geometries)
        # Conv layers run one MVM per output position.
        assert any(g.mvm_count > 1 for g in geometries)


class TestCostReport:
    def test_energy_unit_conversion(self):
        report = CostReport(energy_pj=2_000_000.0)
        assert report.energy_uj == pytest.approx(2.0)

    def test_repr_is_informative(self):
        text = repr(CostReport(energy_pj=1.0, latency_ns=2.0, area_um2=3.0))
        assert "energy" in text and "latency" in text
