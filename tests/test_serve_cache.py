"""Tests for the programmed-mapping LRU cache."""

import pytest

from repro.serve.cache import MappingCache, mapping_key


class Counter:
    """A programmer that counts how many times each key was built."""

    def __init__(self):
        self.programs = []

    def programmer(self, key):
        def build():
            self.programs.append(key)
            return f"mapping-{key}"

        return build


class TestHitMiss:
    def test_first_lookup_programs_then_hits(self):
        cache, counter = MappingCache(), Counter()
        key = mapping_key("lenet", "A4W2", "chip00")
        first = cache.get_or_program(key, counter.programmer(key))
        second = cache.get_or_program(key, counter.programmer(key))
        assert first is second
        assert counter.programs == [key]
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_distinct_chips_get_distinct_mappings(self):
        cache, counter = MappingCache(), Counter()
        keys = [mapping_key("lenet", "A4W2", f"chip{i}") for i in range(3)]
        values = [cache.get_or_program(k, counter.programmer(k)) for k in keys]
        assert len(set(values)) == 3
        assert cache.stats.misses == 3


class TestBackendIdentity:
    def test_backend_is_part_of_the_key(self):
        """The same chip programmed by two backends is two cache entries."""
        fq = mapping_key("lenet", "A4W2", "chip00", backend="fake-quant")
        circuit = mapping_key("lenet", "A4W2", "chip00", backend="circuit")
        assert fq != circuit
        cache, counter = MappingCache(), Counter()
        first = cache.get_or_program(fq, counter.programmer(fq))
        second = cache.get_or_program(circuit, counter.programmer(circuit))
        assert first != second
        assert counter.programs == [fq, circuit]

    def test_chip_id_stays_last_for_lifecycle_invalidation(self):
        """`key[-1] == chip_id` selection must keep working on both backends."""
        cache, counter = MappingCache(), Counter()
        for backend in ("fake-quant", "circuit"):
            key = mapping_key("m", "q", "chip00", backend=backend)
            cache.get_or_program(key, counter.programmer(key))
        assert cache.invalidate_where(lambda key: key[-1] == "chip00") == 2

    def test_cross_backend_miss_counted(self):
        """A miss whose (model, qconfig, chip) is resident under the other
        backend is the collision the backend-aware key exists to prevent."""
        cache, counter = MappingCache(), Counter()
        fq = mapping_key("m", "q", "chip00", backend="fake-quant")
        circuit = mapping_key("m", "q", "chip00", backend="circuit")
        cache.get_or_program(fq, counter.programmer(fq))
        assert cache.stats.cross_backend_misses == 0
        cache.get_or_program(circuit, counter.programmer(circuit))
        assert cache.stats.cross_backend_misses == 1
        assert cache.stats.as_dict()["cross_backend_misses"] == 1

    def test_plain_misses_not_counted_as_cross_backend(self):
        cache, counter = MappingCache(), Counter()
        cache.get_or_program(
            mapping_key("m", "q", "chip00"), counter.programmer("a")
        )
        # Different chip, same backend: an ordinary miss.
        cache.get_or_program(
            mapping_key("m", "q", "chip01"), counter.programmer("b")
        )
        # Opaque (non-mapping_key) keys never participate.
        cache.get_or_program("opaque", counter.programmer("c"))
        assert cache.stats.misses == 3
        assert cache.stats.cross_backend_misses == 0

    def test_program_seconds_accumulate(self):
        cache, counter = MappingCache(), Counter()
        key = mapping_key("m", "A4W2", "c")
        cache.get_or_program(key, counter.programmer(key))
        assert cache.stats.program_seconds > 0.0


class TestEviction:
    def test_lru_evicts_least_recent(self):
        cache, counter = MappingCache(capacity=2), Counter()
        a, b, c = (mapping_key("m", "q", cid) for cid in "abc")
        cache.get_or_program(a, counter.programmer(a))
        cache.get_or_program(b, counter.programmer(b))
        cache.get_or_program(a, counter.programmer(a))  # refresh a
        cache.get_or_program(c, counter.programmer(c))  # evicts b
        assert b not in cache
        assert a in cache and c in cache
        assert cache.stats.evictions == 1

    def test_evicted_key_reprograms(self):
        cache, counter = MappingCache(capacity=1), Counter()
        a, b = mapping_key("m", "q", "a"), mapping_key("m", "q", "b")
        cache.get_or_program(a, counter.programmer(a))
        cache.get_or_program(b, counter.programmer(b))
        cache.get_or_program(a, counter.programmer(a))
        assert counter.programs == [a, b, a]
        assert cache.stats.misses == 3

    def test_capacity_none_never_evicts(self):
        cache, counter = MappingCache(capacity=None), Counter()
        for i in range(50):
            key = mapping_key("m", "q", str(i))
            cache.get_or_program(key, counter.programmer(key))
        assert len(cache) == 50
        assert cache.stats.evictions == 0

    def test_keys_ordered_lru_first(self):
        cache, counter = MappingCache(), Counter()
        a, b = mapping_key("m", "q", "a"), mapping_key("m", "q", "b")
        cache.get_or_program(a, counter.programmer(a))
        cache.get_or_program(b, counter.programmer(b))
        cache.get_or_program(a, counter.programmer(a))
        assert cache.keys == [b, a]


class TestInvalidate:
    def test_invalidate_drops_entry(self):
        cache, counter = MappingCache(), Counter()
        key = mapping_key("m", "q", "a")
        cache.get_or_program(key, counter.programmer(key))
        assert cache.invalidate(key)
        assert key not in cache
        assert not cache.invalidate(key)

    def test_invalidate_counts_in_stats(self):
        cache, counter = MappingCache(), Counter()
        key = mapping_key("m", "q", "a")
        cache.get_or_program(key, counter.programmer(key))
        cache.invalidate(key)
        cache.invalidate(key)  # already gone: not counted
        assert cache.stats.invalidations == 1
        assert cache.stats.evictions == 0
        assert cache.stats.as_dict()["invalidations"] == 1

    def test_invalidate_where_is_surgical(self):
        """Recalibrating one chip must not flush the healthy fleet."""
        cache, counter = MappingCache(), Counter()
        keys = [mapping_key("m", "q", f"chip{i}") for i in range(4)]
        for key in keys:
            cache.get_or_program(key, counter.programmer(key))
        dropped = cache.invalidate_where(lambda key: key[-1] == "chip2")
        assert dropped == 1
        assert keys[2] not in cache
        assert all(key in cache for key in keys if key != keys[2])
        assert cache.stats.invalidations == 1

    def test_invalidate_where_matches_many(self):
        cache, counter = MappingCache(), Counter()
        for model in ("lenet", "vgg"):
            for chip in ("a", "b"):
                key = mapping_key(model, "q", chip)
                cache.get_or_program(key, counter.programmer(key))
        dropped = cache.invalidate_where(lambda key: key[0] == "lenet")
        assert dropped == 2
        assert len(cache) == 2
        assert cache.stats.invalidations == 2

    def test_invalidate_where_no_match(self):
        cache, counter = MappingCache(), Counter()
        key = mapping_key("m", "q", "a")
        cache.get_or_program(key, counter.programmer(key))
        assert cache.invalidate_where(lambda k: False) == 0
        assert key in cache
        assert cache.stats.invalidations == 0

    def test_peek_does_not_touch_stats_or_order(self):
        cache, counter = MappingCache(capacity=2), Counter()
        a, b = mapping_key("m", "q", "a"), mapping_key("m", "q", "b")
        cache.get_or_program(a, counter.programmer(a))
        cache.get_or_program(b, counter.programmer(b))
        lookups_before = cache.stats.lookups
        assert cache.peek(a) == "mapping-" + str(a)
        assert cache.peek(mapping_key("m", "q", "zz")) is None
        assert cache.stats.lookups == lookups_before
        assert cache.keys == [a, b]  # peek did not refresh a's recency

    def test_clear_keeps_stats(self):
        cache, counter = MappingCache(), Counter()
        key = mapping_key("m", "q", "a")
        cache.get_or_program(key, counter.programmer(key))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.misses == 1


class TestValidation:
    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            MappingCache(capacity=0)
