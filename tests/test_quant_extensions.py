"""Tests for per-channel, PACT, TWN ternary, calibrators, bias correction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.models import build_model
from repro.quant import (
    QConfig,
    QuantLinear,
    calibrate_model,
    convert_to_quantized,
    mmse_scale,
    percentile_scale,
    kl_scale,
)
from repro.quant.bias_correction import (
    apply_bias_correction,
    expected_output_shift,
    quantization_weight_error,
)
from repro.quant.estimators import HistogramCalibrator, make_calibrator
from repro.quant.pact import PactFunction, PactReLU, pact_regularization
from repro.quant.perchannel import (
    fake_quantize_per_channel,
    per_channel_mmse_scales,
    per_channel_quantization_mse,
)
from repro.quant.quantizer import QuantSpec
from repro.quant.scaling import quantization_mse
from repro.quant.ternary import (
    fake_quantize_ternary,
    ternarize,
    ternary_sparsity,
    twn_threshold_and_scale,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


# ----------------------------------------------------------------------
# Scale estimators
# ----------------------------------------------------------------------
class TestPercentileScale:
    def test_p100_equals_minmax(self, rng):
        x = rng.normal(size=1000)
        spec = QuantSpec(4)
        assert percentile_scale(x, spec, 100.0) == pytest.approx(
            np.abs(x).max() / spec.qmax
        )

    def test_lower_percentile_clips_outliers(self, rng):
        x = np.concatenate([rng.normal(size=1000), [100.0]])
        spec = QuantSpec(4)
        assert percentile_scale(x, spec, 99.0) < percentile_scale(x, spec, 100.0) / 10

    def test_zero_tensor(self):
        assert percentile_scale(np.zeros(10), QuantSpec(4)) == 1.0

    def test_rejects_bad_percentile(self):
        with pytest.raises(ValueError):
            percentile_scale(np.ones(4), QuantSpec(4), 0.0)


class TestKLScale:
    def test_positive_and_finite(self, rng):
        scale = kl_scale(rng.normal(size=5000), QuantSpec(4))
        assert np.isfinite(scale) and scale > 0

    def test_zero_tensor(self):
        assert kl_scale(np.zeros(100), QuantSpec(4)) == 1.0

    def test_clips_heavy_tails(self, rng):
        """KL calibration should clip a heavy-tailed distribution well below
        its maximum magnitude."""
        x = rng.standard_t(df=2, size=20_000)
        spec = QuantSpec(8)
        from repro.quant import minmax_scale

        assert kl_scale(x, spec) < minmax_scale(x, spec)


class TestHistogramCalibrator:
    def test_protocol_matches_activation_calibrator(self, rng):
        calibrator = HistogramCalibrator(method="percentile", percentile=100.0)
        assert not calibrator.calibrated
        calibrator.observe(rng.normal(size=500))
        assert calibrator.calibrated
        assert calibrator.scale(QuantSpec(8)) > 0

    def test_uncalibrated_raises(self):
        with pytest.raises(RuntimeError):
            HistogramCalibrator().scale(QuantSpec(8))

    def test_percentile_full_range_close_to_peak(self, rng):
        x = rng.normal(size=4000)
        calibrator = HistogramCalibrator(method="percentile", percentile=100.0)
        calibrator.observe(x)
        spec = QuantSpec(8)
        expected = np.abs(x).max() / spec.qmax
        assert calibrator.scale(spec) == pytest.approx(expected, rel=0.02)

    def test_range_growth_preserves_mass(self, rng):
        calibrator = HistogramCalibrator()
        calibrator.observe(rng.normal(size=1000))
        total_before = calibrator.counts.sum()
        calibrator.observe(10.0 * rng.normal(size=1000))
        assert calibrator.counts.sum() == pytest.approx(total_before + 1000)

    def test_kl_method_runs(self, rng):
        calibrator = HistogramCalibrator(method="kl")
        calibrator.observe(rng.normal(size=5000))
        assert calibrator.scale(QuantSpec(4)) > 0

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError):
            HistogramCalibrator(method="entropy2")

    def test_factory(self):
        from repro.quant.calibration import ActivationCalibrator

        assert isinstance(make_calibrator("minmax"), ActivationCalibrator)
        assert isinstance(make_calibrator("percentile"), HistogramCalibrator)
        with pytest.raises(ValueError):
            make_calibrator("bogus")

    def test_qconfig_rejects_unknown_calibrator(self):
        with pytest.raises(ValueError):
            QConfig(calibrator="bogus")


# ----------------------------------------------------------------------
# Per-channel quantization
# ----------------------------------------------------------------------
class TestPerChannel:
    def test_scales_shape(self, rng):
        w = rng.normal(size=(8, 4, 3, 3))
        scales = per_channel_mmse_scales(w, QuantSpec(4))
        assert scales.shape == (8,)
        assert np.all(scales > 0)

    def test_per_channel_mse_not_worse_than_per_tensor(self, rng):
        """Per-channel always has at least per-tensor's representational power."""
        # Channels with wildly different ranges — the classic motivating case.
        w = rng.normal(size=(6, 32))
        w *= np.array([0.01, 0.1, 1.0, 2.0, 5.0, 10.0])[:, None]
        spec = QuantSpec(4)
        per_tensor = quantization_mse(w, mmse_scale(w, spec), spec)
        assert per_channel_quantization_mse(w, spec) < per_tensor

    def test_fake_quantize_values_on_grid(self, rng):
        w = Tensor(rng.normal(size=(4, 10)), requires_grad=True)
        spec = QuantSpec(2)
        scales = per_channel_mmse_scales(w.data, spec)
        out = fake_quantize_per_channel(w, scales, spec)
        for channel in range(4):
            codes = out.data[channel] / scales[channel]
            assert np.allclose(codes, np.rint(codes))
            assert np.abs(codes).max() <= spec.qmax

    def test_straight_through_gradient(self, rng):
        w = Tensor(rng.normal(size=(4, 10)), requires_grad=True)
        spec = QuantSpec(4)
        scales = per_channel_mmse_scales(w.data, spec)
        out = fake_quantize_per_channel(w, scales, spec)
        out.sum().backward()
        assert np.allclose(w.grad, np.ones_like(w.data))

    def test_rejects_wrong_scale_count(self, rng):
        w = Tensor(rng.normal(size=(4, 10)))
        with pytest.raises(ValueError):
            fake_quantize_per_channel(w, np.ones(3), QuantSpec(4))

    def test_rejects_nonpositive_scales(self, rng):
        w = Tensor(rng.normal(size=(2, 5)))
        with pytest.raises(ValueError):
            fake_quantize_per_channel(w, np.array([1.0, 0.0]), QuantSpec(4))

    def test_layer_integration(self, rng):
        layer = QuantLinear(16, 8, QConfig(per_channel_weights=True, weight_bits=2))
        assert np.asarray(layer.weight_scale).shape == (8,)
        layer.set_activation_scale(0.1)
        out = layer(Tensor(rng.normal(size=(3, 16))))
        assert out.shape == (3, 8)

    def test_layer_ideal_weight_max_per_channel(self, rng):
        layer = QuantLinear(16, 8, QConfig(per_channel_weights=True))
        w_max = layer.ideal_weight_max()
        assert w_max > 0
        assert w_max <= np.abs(layer.weight.data).max() * 1.5


# ----------------------------------------------------------------------
# PACT
# ----------------------------------------------------------------------
class TestPact:
    def test_output_range(self, rng):
        pact = PactReLU(bits=4, init_alpha=2.0)
        y = pact(Tensor(rng.normal(size=100) * 5))
        assert y.data.min() >= 0.0
        assert y.data.max() <= 2.0 + 1e-12

    def test_levels_count(self):
        pact = PactReLU(bits=2, init_alpha=3.0)
        y = pact(Tensor(np.linspace(-1, 5, 1000)))
        assert len(np.unique(y.data)) <= 4  # 2^2 levels in [0, alpha]

    def test_gradient_wrt_input(self):
        x = Tensor(np.array([-1.0, 0.5, 3.0]), requires_grad=True)
        pact = PactReLU(bits=4, init_alpha=2.0)
        pact(x).sum().backward()
        # Inside (0, alpha): 1; outside: 0.
        assert np.allclose(x.grad, [0.0, 1.0, 0.0])

    def test_gradient_wrt_alpha(self):
        x = Tensor(np.array([-1.0, 0.5, 3.0, 4.0]), requires_grad=True)
        pact = PactReLU(bits=4, init_alpha=2.0)
        pact(x).sum().backward()
        # Two elements clipped at alpha -> d(sum)/d(alpha) = 2.
        assert pact.alpha.grad == pytest.approx([2.0])

    def test_alpha_is_trainable_parameter(self):
        pact = PactReLU()
        names = [name for name, _ in pact.named_parameters()]
        assert "alpha" in names

    def test_regularization(self):
        pact = PactReLU(init_alpha=3.0, alpha_decay=0.1)
        assert float(pact.regularization_loss().data) == pytest.approx(0.9)

    def test_model_level_regularization(self):
        from repro.nn import Sequential

        model = Sequential(PactReLU(alpha_decay=0.1), PactReLU(alpha_decay=0.0))
        total = pact_regularization(model)
        assert float(total.data) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PactReLU(bits=1)
        with pytest.raises(ValueError):
            PactReLU(init_alpha=0.0)

    def test_alpha_learns_to_shrink(self, rng):
        """Training on a clipped regression target should reduce alpha."""
        from repro.training.optim import SGD

        pact = PactReLU(bits=8, init_alpha=10.0, alpha_decay=0.001)
        x_data = rng.uniform(0, 10, size=200)
        target = np.clip(x_data, 0, 2.0)
        optimizer = SGD(pact.parameters(), lr=0.05, momentum=0.0)
        for _ in range(100):
            optimizer.zero_grad()
            out = pact(Tensor(x_data))
            loss = ((out - Tensor(target)) ** 2).mean() + pact.regularization_loss()
            loss.backward()
            optimizer.step()
        assert pact.clip_value < 5.0


# ----------------------------------------------------------------------
# TWN ternary
# ----------------------------------------------------------------------
class TestTernary:
    def test_threshold_and_scale_formula(self):
        w = np.array([1.0, -1.0, 0.1, -0.1])
        delta, alpha = twn_threshold_and_scale(w)
        assert delta == pytest.approx(0.7 * 0.55)
        assert alpha == pytest.approx(1.0)  # survivors are the +-1s

    def test_ternarize_three_values(self, rng):
        w = rng.normal(size=1000)
        delta, alpha = twn_threshold_and_scale(w)
        t = ternarize(w, delta, alpha)
        assert set(np.unique(t)) <= {-alpha, 0.0, alpha}

    def test_zero_weights_fallback(self):
        delta, alpha = twn_threshold_and_scale(np.zeros(10))
        assert alpha == 1.0  # degenerate fallback, no crash

    def test_ste_gradient(self, rng):
        w = Tensor(rng.normal(size=50), requires_grad=True)
        fake_quantize_ternary(w).sum().backward()
        assert np.allclose(w.grad, np.ones(50))

    def test_sparsity_measure(self, rng):
        w = rng.normal(size=10_000)
        sparsity = ternary_sparsity(w)
        # For a Gaussian, P(|w| < 0.7 * E|w|) ~ 0.42.
        assert 0.3 < sparsity < 0.55

    def test_twn_reconstruction_reasonable(self, rng):
        """TWN should reconstruct a Gaussian tensor about as well as the
        MMSE ternary grid (both are 'optimal' under different constraints)."""
        w = rng.normal(size=5000)
        spec = QuantSpec(2)
        mmse_err = quantization_mse(w, mmse_scale(w, spec), spec)
        delta, alpha = twn_threshold_and_scale(w)
        twn_err = float(np.mean((w - ternarize(w, delta, alpha)) ** 2))
        assert twn_err < 2.0 * mmse_err


# ----------------------------------------------------------------------
# Bias correction
# ----------------------------------------------------------------------
class TestBiasCorrection:
    def _calibrated_model(self, rng, qconfig=None):
        model = build_model("lenet5-mini")
        qconfig = qconfig or QConfig.from_notation("A8W2")
        model = convert_to_quantized(model, qconfig)
        data = rng.normal(size=(16, 1, 28, 28))
        calibrate_model(model, [data])
        return model, data

    def test_weight_error_matrix_shape(self, rng):
        model, _ = self._calibrated_model(rng)
        from repro.quant import quantized_layers

        for _, layer in quantized_layers(model):
            error = quantization_weight_error(layer)
            assert error.ndim == 2
            assert error.shape[1] == layer.mvm_input_dim()

    def test_correction_reduces_output_shift(self, rng):
        model, data = self._calibrated_model(rng)
        from repro.quant import quantized_layers
        from repro.autograd import no_grad

        # Measure the first layer's shift before and after correction.
        name, layer = next(iter(quantized_layers(model)))
        before = np.linalg.norm(expected_output_shift(layer, data))
        applied = apply_bias_correction(model, [data])
        assert applied  # something was corrected
        # The bias absorbed the measured shift.  `expected_output_shift` sees
        # the raw batch while the correction observes the layer's quantized
        # input, so agreement is close but not exact.
        assert applied[name] == pytest.approx(before, rel=0.05)

    def test_correction_returns_norms(self, rng):
        model, data = self._calibrated_model(rng)
        applied = apply_bias_correction(model, [data])
        assert all(v >= 0 for v in applied.values())

    def test_observer_cleanup(self, rng):
        model, data = self._calibrated_model(rng)
        apply_bias_correction(model, [data])
        from repro.quant import quantized_layers

        assert all(layer._input_observer is None for _, layer in quantized_layers(model))

    def test_correction_improves_agreement_with_float(self, rng):
        """End to end: corrected quantized outputs are closer (in mean) to
        the float model's outputs."""
        from repro.autograd import no_grad

        float_model = build_model("lenet5-mini")
        state = float_model.state_dict()
        data = rng.normal(size=(32, 1, 28, 28))
        with no_grad():
            reference = float_model(Tensor(data)).data

        def quantized_outputs(with_correction):
            model = build_model("lenet5-mini")
            model.load_state_dict(state)
            model = convert_to_quantized(model, QConfig.from_notation("A8W2"))
            calibrate_model(model, [data])
            if with_correction:
                apply_bias_correction(model, [data])
            with no_grad():
                return model(Tensor(data)).data

        err_plain = np.abs(quantized_outputs(False).mean(0) - reference.mean(0)).mean()
        err_corrected = np.abs(quantized_outputs(True).mean(0) - reference.mean(0)).mean()
        assert err_corrected <= err_plain


# ----------------------------------------------------------------------
# Properties
# ----------------------------------------------------------------------
@given(
    bits=st.sampled_from([2, 3, 4]),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=30, deadline=None)
def test_per_channel_never_worse_than_per_tensor_property(bits, seed):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=(4, 16)) * rng.uniform(0.1, 5.0, size=(4, 1))
    spec = QuantSpec(bits)
    per_tensor = quantization_mse(w, mmse_scale(w, spec), spec)
    assert per_channel_quantization_mse(w, spec) <= per_tensor + 1e-12


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=30, deadline=None)
def test_ternarize_magnitudes_bounded(seed):
    rng = np.random.default_rng(seed)
    w = rng.normal(size=200)
    delta, alpha = twn_threshold_and_scale(w)
    t = ternarize(w, delta, alpha)
    assert np.abs(t).max() <= alpha + 1e-12
