"""Tests for temperature/aging drift processes and the drifting chip."""

import numpy as np
import pytest

from repro.pim.drift import AgingDrift, DriftingChip, TemperatureDrift, drift_trajectory
from repro.variability.sampler import VariabilitySampler, VariabilitySpec
from repro.variability.models import WeightProportionalVariance


def _chip(sigma_within=0.1, sigma_between=0.2, seed=0):
    spec = VariabilitySpec(sigma_within, sigma_between, WeightProportionalVariance())
    return VariabilitySampler(spec, seed=seed).sample_chip()


class TestTemperatureDrift:
    def test_starts_at_zero(self):
        process = TemperatureDrift(theta=0.5, sigma=0.1)
        rng = np.random.default_rng(0)
        assert process.epsilon_at(0.0, rng) == 0.0

    def test_stationary_std(self):
        process = TemperatureDrift(theta=0.5, sigma=0.1)
        assert process.stationary_std == pytest.approx(0.1 / np.sqrt(1.0))

    def test_long_run_statistics(self):
        process = TemperatureDrift(theta=1.0, sigma=0.2)
        rng = np.random.default_rng(1)
        # Widely spaced samples are nearly independent draws from the
        # stationary distribution.
        samples = [process.epsilon_at(float(t), rng) for t in range(1, 4001, 10)]
        assert abs(np.mean(samples)) < 0.02
        assert np.std(samples) == pytest.approx(process.stationary_std, rel=0.1)

    def test_seasonal_component(self):
        process = TemperatureDrift(theta=0.5, sigma=0.0, amplitude=0.3, period=4.0)
        rng = np.random.default_rng(2)
        assert process.epsilon_at(1.0, rng) == pytest.approx(0.3)  # sin(pi/2)
        assert process.epsilon_at(2.0, rng) == pytest.approx(0.0, abs=1e-12)

    def test_rejects_time_reversal(self):
        process = TemperatureDrift()
        rng = np.random.default_rng(3)
        process.epsilon_at(5.0, rng)
        with pytest.raises(ValueError):
            process.epsilon_at(4.0, rng)

    def test_rejects_bad_theta(self):
        with pytest.raises(ValueError):
            TemperatureDrift(theta=0.0)

    def test_reset(self):
        process = TemperatureDrift(sigma=0.5)
        rng = np.random.default_rng(4)
        process.epsilon_at(10.0, rng)
        process.reset()
        assert process.epsilon_at(0.0, np.random.default_rng(4)) == 0.0


class TestAgingDrift:
    def test_deterministic_log_decay(self):
        process = AgingDrift(nu=0.05, t0=1.0)
        rng = np.random.default_rng(0)
        assert process.epsilon_at(0.0, rng) == 0.0
        eps_1 = process.epsilon_at(1.0, rng)
        eps_10 = process.epsilon_at(10.0, rng)
        assert eps_1 == pytest.approx(-0.05 * np.log(2))
        assert eps_10 < eps_1 < 0.0  # monotone decay

    def test_jitter_adds_noise(self):
        process = AgingDrift(nu=0.0, jitter=0.1)
        rng = np.random.default_rng(1)
        draws = [process.epsilon_at(1.0, rng) for _ in range(2000)]
        assert np.std(draws) == pytest.approx(0.1, rel=0.1)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError):
            AgingDrift().epsilon_at(-1.0, np.random.default_rng(0))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            AgingDrift(nu=-0.1)
        with pytest.raises(ValueError):
            AgingDrift(t0=0.0)


class TestDriftingChip:
    def test_starts_at_fabrication_epsilon(self):
        base = _chip()
        drifting = DriftingChip(base, TemperatureDrift(sigma=0.1))
        assert drifting.eps_between == base.eps_between

    def test_advance_changes_eps_between(self):
        base = _chip()
        drifting = DriftingChip(base, TemperatureDrift(theta=0.1, sigma=0.5), seed=7)
        before = drifting.eps_between
        after = drifting.advance_to(10.0)
        assert after != before
        assert after == drifting.eps_between
        assert drifting.fabrication_eps == before

    def test_within_pattern_frozen_across_drift(self):
        base = _chip(sigma_within=0.2)
        drifting = DriftingChip(base, TemperatureDrift(sigma=0.5), seed=7)
        eps_t0 = drifting.epsilon_for("layer", (4, 4)).copy()
        drifting.advance_to(5.0)
        eps_t5 = drifting.epsilon_for("layer", (4, 4))
        # The change is a pure scalar shift: eps_W pattern is fabrication-frozen.
        shift = eps_t5 - eps_t0
        assert np.allclose(shift, shift.flat[0])
        assert shift.flat[0] == pytest.approx(
            drifting.eps_between - drifting.fabrication_eps
        )

    def test_shares_fabrication_pattern_with_base(self):
        base = _chip(sigma_within=0.2)
        pattern = base.within_pattern("conv1", (3, 3)).copy()
        drifting = DriftingChip(base, AgingDrift(nu=0.05))
        assert np.array_equal(drifting.within_pattern("conv1", (3, 3)), pattern)

    def test_rejects_time_reversal(self):
        drifting = DriftingChip(_chip(), TemperatureDrift())
        drifting.advance_to(5.0)
        with pytest.raises(ValueError):
            drifting.advance_to(1.0)

    def test_remeasure_clears_cached_measurements(self):
        drifting = DriftingChip(_chip(), AgingDrift(nu=0.1))
        drifting.measurements["gtm:1000"] = 0.123
        drifting.remeasure()
        assert not drifting.measurements

    def test_measurement_epoch_counts_advances(self):
        drifting = DriftingChip(_chip(), AgingDrift(nu=0.1))
        assert drifting.measurement_epoch == 0
        drifting.advance_to(1.0)
        drifting.advance_to(2.0)
        assert drifting.measurement_epoch == 2


class TestTrajectory:
    def test_trajectory_shape_and_reproducibility(self):
        times = np.linspace(0, 24, 25)
        process = TemperatureDrift(sigma=0.2)
        path_a = drift_trajectory(process, times, seed=3)
        path_b = drift_trajectory(process, times, seed=3)
        assert path_a.shape == (25,)
        assert np.array_equal(path_a, path_b)

    def test_different_seeds_differ(self):
        times = np.linspace(0, 24, 25)
        process = TemperatureDrift(sigma=0.2)
        assert not np.array_equal(
            drift_trajectory(process, times, seed=1),
            drift_trajectory(process, times, seed=2),
        )

    def test_aging_trajectory_monotone(self):
        times = np.linspace(0, 100, 50)
        path = drift_trajectory(AgingDrift(nu=0.05), times, seed=0)
        assert np.all(np.diff(path) <= 0)
