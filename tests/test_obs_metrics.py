"""Unit tests for repro.obs.metrics: counters, gauges, histograms, registry."""

import json
import math

import numpy as np
import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("requests")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("requests").inc(-1)

    def test_as_dict(self):
        counter = Counter("requests")
        counter.inc(3)
        assert counter.as_dict() == {"kind": "counter", "value": 3}


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("depth")
        gauge.set(4.0)
        gauge.inc()
        gauge.dec(2.0)
        assert gauge.value == 3.0

    def test_can_go_negative(self):
        gauge = Gauge("delta")
        gauge.dec(1.5)
        assert gauge.value == -1.5


class TestHistogramMeterSurface:
    """The AverageMeter-compatible subset telemetry call sites rely on."""

    def test_empty_histogram_reports_zeros(self):
        h = Histogram("latency")
        assert h.count == 0
        assert h.mean == 0.0
        assert h.min == 0.0
        assert h.max == 0.0
        assert h.std == 0.0
        assert h.quantile(0.99) == 0.0

    def test_mean_min_max_match_numpy(self):
        h = Histogram("latency")
        values = [0.002, 0.017, 0.5, 3.0, 0.0004]
        for value in values:
            h.update(value)  # AverageMeter-compatible alias
        assert h.count == len(values)
        assert h.mean == pytest.approx(np.mean(values))
        assert h.min == min(values)
        assert h.max == max(values)
        assert h.std == pytest.approx(np.std(values))

    def test_weighted_observe(self):
        h = Histogram("ticks", lo=0.5, hi=100.0)
        h.observe(2.0, weight=3)
        assert h.count == 3
        assert h.total == 6.0

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError, match="weight"):
            Histogram("x").observe(1.0, weight=0)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram("x", lo=0.0)
        with pytest.raises(ValueError):
            Histogram("x", lo=1.0, hi=0.5)


class TestHistogramQuantiles:
    def test_exact_at_extremes(self):
        h = Histogram("latency")
        for value in (0.001, 0.02, 0.3, 4.0):
            h.observe(value)
        assert h.quantile(0.0) == 0.001
        assert h.quantile(1.0) == 4.0

    def test_quantiles_within_one_bucket_of_exact(self):
        """Interpolated quantiles land within bucket resolution of the
        exact order statistics (the documented error bound)."""
        rng = np.random.default_rng(0)
        values = rng.lognormal(mean=-4.0, sigma=1.5, size=5000)
        h = Histogram("latency", lo=1e-6, hi=1e3, buckets_per_decade=10)
        for value in values:
            h.observe(float(value))
        growth = 10.0 ** (1.0 / h.buckets_per_decade)
        for q in (0.5, 0.9, 0.95, 0.99):
            exact = float(np.quantile(values, q))
            estimate = h.quantile(q)
            # One bucket width in log space on either side.
            assert exact / growth <= estimate <= exact * growth

    def test_single_value_collapses_all_quantiles(self):
        h = Histogram("latency")
        h.observe(0.25)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 0.25

    def test_underflow_and_overflow_buckets(self):
        h = Histogram("latency", lo=1e-3, hi=1.0)
        h.observe(1e-9)  # underflow
        h.observe(100.0)  # overflow
        assert h.counts[0] == 1
        assert h.counts[-1] == 1
        # Quantiles stay clamped to the exact observed range.
        assert h.quantile(0.0) == 1e-9
        assert h.quantile(1.0) == 100.0

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            Histogram("x").quantile(1.5)

    def test_percentiles_mapping(self):
        h = Histogram("latency")
        for value in np.linspace(0.01, 1.0, 100):
            h.observe(float(value))
        points = h.percentiles((50.0, 95.0, 99.0))
        assert set(points) == {"p50", "p95", "p99"}
        assert points["p50"] <= points["p95"] <= points["p99"]

    def test_bucket_bounds_monotonic_and_prometheus_shaped(self):
        h = Histogram("latency", lo=1e-3, hi=1.0, buckets_per_decade=5)
        bounds = h.bucket_bounds()
        assert bounds[-1] == float("inf")
        assert all(a < b for a, b in zip(bounds, bounds[1:]))
        assert len(bounds) == len(h.counts)

    def test_memory_is_fixed(self):
        h = Histogram("latency", lo=1e-6, hi=1e6, buckets_per_decade=10)
        buckets = len(h.counts)
        for value in np.random.default_rng(1).uniform(1e-7, 1e7, size=2000):
            h.observe(float(value))
        assert len(h.counts) == buckets
        assert sum(h.counts) == h.count == 2000

    def test_as_dict_is_json_clean(self):
        h = Histogram("latency")
        h.observe(0.5)
        snapshot = json.loads(json.dumps(h.as_dict()))
        assert snapshot["count"] == 1
        assert snapshot["p99"] == 0.5


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        first = registry.counter("requests")
        second = registry.counter("requests")
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("requests")
        with pytest.raises(TypeError, match="already registered"):
            registry.histogram("requests")

    def test_iteration_and_names_sorted(self):
        registry = MetricsRegistry()
        registry.histogram("b_latency")
        registry.counter("a_total")
        assert registry.names == ["a_total", "b_latency"]
        assert [metric.name for metric in registry] == ["a_total", "b_latency"]
        assert len(registry) == 2

    def test_get_missing_returns_none(self):
        assert MetricsRegistry().get("nope") is None

    def test_as_dict_round_trips_json(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.histogram("b").observe(1.0)
        registry.gauge("c").set(0.5)
        snapshot = json.loads(json.dumps(registry.as_dict()))
        assert snapshot["a"]["value"] == 2
        assert snapshot["b"]["kind"] == "histogram"
        assert snapshot["c"]["value"] == 0.5
