"""PIM crossbar substrate: converters, mapping, tiling, chip-level MVM."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.pim import (
    ADC,
    DAC,
    ConductanceMapping,
    CrossbarArray,
    PimChip,
    deinterleave_readings,
    interleave_differential,
    plan_tiles,
    tile_count,
)
from repro.quant import QConfig, QuantLinear
from repro.variability import VariabilitySpec, WeightProportionalVariance
from repro.variability.sampler import ChipVariation


class TestConverters:
    def test_dac_linear_in_range(self):
        dac = DAC(bits=8, v_step=0.5)
        assert np.allclose(dac.convert(np.array([0, 1, -2])), [0.0, 0.5, -1.0])

    def test_dac_saturates(self):
        dac = DAC(bits=4)
        assert dac.convert(np.array([100.0]))[0] == 7.0
        assert dac.convert(np.array([-100.0]))[0] == -7.0

    def test_adc_ideal_passthrough(self, rng):
        currents = rng.normal(size=10)
        assert np.array_equal(ADC(ideal=True).convert(currents), currents)

    def test_adc_quantizes_to_lsb(self):
        adc = ADC(bits=4, full_scale=7.0)  # lsb = 1.0
        assert adc.convert(np.array([2.4]))[0] == pytest.approx(2.0)
        assert adc.convert(np.array([100.0]))[0] == pytest.approx(7.0)

    def test_adc_error_bounded(self, rng):
        adc = ADC(bits=10, full_scale=1.0)
        x = rng.uniform(-1, 1, size=200)
        assert np.abs(adc.convert(x) - x).max() <= adc.lsb / 2 + 1e-12


class TestMapping:
    def test_differential_split(self):
        mapping = ConductanceMapping(g_unit=2.0)
        pos, neg = mapping.to_differential(np.array([3.0, -2.0, 0.0]))
        assert np.allclose(pos, [6.0, 0.0, 0.0])
        assert np.allclose(neg, [0.0, 4.0, 0.0])

    def test_round_trip(self, rng):
        mapping = ConductanceMapping(g_unit=0.5)
        codes = rng.integers(-7, 8, size=(4, 5)).astype(float)
        pos, neg = mapping.to_differential(codes)
        assert np.allclose(mapping.from_differential(pos, neg), codes)

    def test_interleave_round_trip(self, rng):
        pos = rng.uniform(size=(3, 4))
        neg = rng.uniform(size=(3, 4))
        packed = interleave_differential(pos, neg)
        assert packed.shape == (3, 8)
        p2, n2 = deinterleave_readings(packed)
        assert np.array_equal(p2, pos)
        assert np.array_equal(n2, neg)


class TestTiling:
    def test_tiles_cover_matrix(self):
        tiles = plan_tiles(100, 50, 32, 16)
        covered = np.zeros((100, 50), dtype=int)
        for tile in tiles:
            covered[tile.row_start : tile.row_stop, tile.col_start : tile.col_stop] += 1
        assert np.all(covered == 1)

    def test_tile_count(self):
        assert tile_count(512, 512, 512, 512) == 1
        assert tile_count(513, 512, 512, 512) == 2
        assert tile_count(1024, 1024, 512, 512) == 4

    def test_rejects_bad_dims(self):
        with pytest.raises(ValueError):
            plan_tiles(10, 10, 0, 5)


class TestCrossbarArray:
    def test_program_shape_check(self):
        array = CrossbarArray(4, 3)
        with pytest.raises(ValueError):
            array.program(np.zeros((3, 4)))

    def test_ideal_mvm_is_matmul(self, rng):
        array = CrossbarArray(6, 4, adc=ADC(ideal=True))
        g = rng.uniform(0, 1, size=(6, 4))
        array.program(g)
        x = rng.integers(-3, 4, size=(2, 6)).astype(float)
        assert np.allclose(array.mvm(x), x @ g)

    def test_variation_perturbs_then_clears(self, rng):
        array = CrossbarArray(5, 5, key="a")
        g = rng.uniform(0.1, 1, size=(5, 5))
        array.program(g)
        chip = ChipVariation(0.1, 0.2, seed=0)
        array.apply_variation(chip, WeightProportionalVariance())
        assert not np.allclose(array.physical, g)
        array.clear_variation()
        assert np.allclose(array.physical, g)

    def test_input_width_check(self):
        array = CrossbarArray(4, 2)
        array.program(np.zeros((4, 2)))
        with pytest.raises(ValueError):
            array.mvm(np.zeros((1, 5)))


class TestPimChip:
    def _layer(self, rng, d_in=20, d_out=7):
        layer = QuantLinear(d_in, d_out, QConfig(activation_bits=4, weight_bits=2))
        layer.set_activation_scale(0.1)
        return layer

    def test_ideal_chip_matches_fake_quant_exactly(self, rng):
        layer = self._layer(rng)
        chip = PimChip(VariabilitySpec.null(), array_rows=8, array_cols=6, seed=0)
        mapped = chip.deploy_linear(layer, "fc")
        x = rng.normal(size=(5, 20)) * 0.3
        with no_grad():
            expected = layer(Tensor(x)).data
        assert np.allclose(mapped.forward(x), expected, atol=1e-12)
        assert mapped.array_count == tile_count(20, 7, 8, 3)

    def test_adc_resolution_bounds_error(self, rng):
        layer = self._layer(rng)
        coarse = PimChip(
            VariabilitySpec.null(),
            array_rows=32,
            array_cols=16,
            adc=ADC(bits=6, full_scale=64.0),
            seed=0,
        )
        mapped = coarse.deploy_linear(layer, "fc")
        x = rng.normal(size=(3, 20)) * 0.3
        with no_grad():
            expected = layer(Tensor(x)).data
        got = mapped.forward(x)
        assert not np.allclose(got, expected, atol=1e-12)  # ADC error present
        scale = float(layer.act_scale) * float(layer.weight_scale)
        # Differential readout: two ADC conversions per output.
        assert np.abs(got - expected).max() <= 2 * coarse.adc.lsb * scale

    def test_variation_changes_output(self, rng):
        layer = self._layer(rng)
        spec = VariabilitySpec.mixed(0.3, WeightProportionalVariance())
        chip = PimChip(spec, array_rows=16, array_cols=8, seed=2)
        mapped = chip.deploy_linear(layer, "fc")
        x = rng.normal(size=(3, 20)) * 0.3
        with no_grad():
            ideal = layer(Tensor(x)).data
        assert not np.allclose(mapped.forward(x), ideal)

    def test_gtm_read_estimates_eps_b(self):
        spec = VariabilitySpec.mixed(0.3, WeightProportionalVariance())
        chip = PimChip(spec, seed=4)
        estimate = chip.gtm_read(num_cells=200_000)
        assert estimate == pytest.approx(chip.variation.eps_between, abs=0.005)

    def test_gtm_read_exact_without_within_noise(self):
        spec = VariabilitySpec(0.0, 0.2, WeightProportionalVariance())
        chip = PimChip(spec, seed=9)
        assert chip.gtm_read(10) == pytest.approx(chip.variation.eps_between, abs=1e-12)

    def test_uncalibrated_layer_rejected(self, rng):
        layer = QuantLinear(4, 2, QConfig())
        chip = PimChip(VariabilitySpec.null(), seed=0)
        with pytest.raises(RuntimeError):
            chip.deploy_linear(layer, "fc")

    def test_total_arrays(self, rng):
        chip = PimChip(VariabilitySpec.null(), array_rows=8, array_cols=6, seed=0)
        chip.deploy_linear(self._layer(rng), "a")
        chip.deploy_linear(self._layer(rng, 10, 3), "b")
        assert chip.total_arrays == len(chip.layers["a"].tiles) + len(chip.layers["b"].tiles)
