"""Quantized layers: forward semantics, calibration, conversion, variability."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, no_grad
from repro.quant import (
    QConfig,
    QuantConv2d,
    QuantLinear,
    QuantSpec,
    calibrate_model,
    convert_to_quantized,
    quantized_layers,
)
from repro.quant.ptq import refresh_weight_scales
from repro.variability import (
    LayerFixedVariance,
    VariabilitySpec,
    WeightProportionalVariance,
    inject_variation,
    clear_variation,
)
from repro.variability.sampler import VariabilitySampler


def calibrated_linear(rng, qconfig=None):
    layer = QuantLinear(6, 4, qconfig or QConfig(activation_bits=4, weight_bits=2))
    layer.set_activation_scale(0.05)
    return layer


class TestQConfig:
    def test_from_notation(self):
        qc = QConfig.from_notation("A4W2")
        assert qc.activation_bits == 4
        assert qc.weight_bits == 2
        assert qc.notation == "A4W2"

    def test_bad_notation(self):
        with pytest.raises(ValueError):
            QConfig.from_notation("4W2")


class TestForwardSemantics:
    def test_linear_output_matches_manual_quantization(self, rng):
        layer = calibrated_linear(rng)
        x = rng.normal(size=(3, 6)) * 0.2
        w_spec, a_spec = layer.weight_spec, layer.act_spec
        w_scale, a_scale = float(layer.weight_scale), float(layer.act_scale)
        x_q = np.clip(np.rint(x / a_scale), a_spec.qmin, a_spec.qmax) * a_scale
        w_q = (
            np.clip(np.rint(layer.weight.data / w_scale), w_spec.qmin, w_spec.qmax)
            * w_scale
        )
        expected = x_q @ w_q.T + layer.bias.data
        with no_grad():
            actual = layer(Tensor(x)).data
        assert np.allclose(actual, expected)

    def test_conv_output_is_quantized_weights_conv(self, rng):
        qc = QConfig(activation_bits=8, weight_bits=2)
        layer = QuantConv2d(2, 3, 3, qc, padding=1)
        layer.set_activation_scale(0.05)
        x = rng.normal(size=(1, 2, 5, 5)) * 0.2
        with no_grad():
            out = layer(Tensor(x))
        assert out.shape == (1, 3, 5, 5)

    def test_uncalibrated_raises(self, rng):
        layer = QuantLinear(4, 2, QConfig())
        with pytest.raises(RuntimeError, match="not calibrated"):
            layer(Tensor(rng.normal(size=(1, 4))))

    def test_activation_quantization_can_be_disabled(self, rng):
        qc = QConfig(quantize_activations=False)
        layer = QuantLinear(4, 2, qc)
        with no_grad():
            layer(Tensor(rng.normal(size=(1, 4))))  # no calibration needed

    def test_gradients_flow_through_ste(self, rng):
        layer = calibrated_linear(rng)
        x = Tensor(rng.normal(size=(2, 6)) * 0.1, requires_grad=True)
        (layer(x) ** 2).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        assert x.grad is not None


class TestCalibration:
    def test_calibrate_model_sets_scales(self, rng):
        model = nn.Sequential(nn.Conv2d(1, 2, 3), nn.ReLU(), nn.Flatten(), nn.Linear(2 * 6 * 6, 4))
        convert_to_quantized(model, QConfig())
        batches = [(rng.normal(size=(4, 1, 8, 8)), None) for _ in range(3)]
        calibrate_model(model, batches)
        for _, layer in quantized_layers(model):
            assert float(layer.act_scale) > 0

    def test_finish_without_data_raises(self):
        layer = QuantLinear(2, 2, QConfig())
        layer.begin_calibration()
        with pytest.raises(RuntimeError):
            layer.finish_calibration()

    def test_moving_average_tracks_peak(self):
        from repro.quant import ActivationCalibrator

        calib = ActivationCalibrator(momentum=0.5)
        calib.observe(np.array([1.0]))
        calib.observe(np.array([3.0]))
        assert calib.running_peak == pytest.approx(2.0)
        scale = calib.scale(QuantSpec(4))
        assert scale == pytest.approx(2.0 / 7)


class TestConversion:
    def test_convert_replaces_layers(self):
        model = nn.Sequential(nn.Conv2d(1, 2, 3), nn.ReLU(), nn.Flatten(), nn.Linear(8, 4))
        convert_to_quantized(model, QConfig())
        kinds = [type(m).__name__ for m in model]
        assert kinds[0] == "QuantConv2d"
        assert kinds[-1] == "QuantLinear"

    def test_convert_nested_modules(self):
        from repro.models import ResNet

        model = ResNet(blocks_per_stage=(1, 1, 1, 1), width_multiplier=0.125, num_classes=10)
        convert_to_quantized(model, QConfig())
        names = [name for name, _ in quantized_layers(model)]
        assert any("shortcut" in name for name in names)
        assert any("conv1" in name for name in names)

    def test_weights_preserved(self, rng):
        linear = nn.Linear(4, 3)
        original = linear.weight.data.copy()
        model = nn.Sequential(linear)
        convert_to_quantized(model, QConfig())
        assert np.array_equal(model[0].weight.data, original)

    def test_from_float_copies_geometry(self):
        conv = nn.Conv2d(3, 5, 3, stride=2, padding=1, bias=False)
        qconv = QuantConv2d.from_float(conv, QConfig())
        assert qconv.stride == 2
        assert qconv.padding == 1
        assert qconv.bias is None

    def test_refresh_weight_scales(self, rng):
        layer = calibrated_linear(rng)
        before = float(layer.weight_scale)
        layer.weight.data *= 3.0
        refresh_weight_scales(nn.Sequential(layer))
        assert float(layer.weight_scale) == pytest.approx(before * 3.0, rel=0.2)


class TestVariabilityInjection:
    def _chip(self, spec):
        return VariabilitySampler(spec, seed=0).sample_chip()

    def test_injection_changes_output(self, rng):
        layer = calibrated_linear(rng)
        model = nn.Sequential(layer)
        x = rng.normal(size=(2, 6)) * 0.2
        with no_grad():
            clean = layer(Tensor(x)).data.copy()
        spec = VariabilitySpec.within_only(0.3, WeightProportionalVariance())
        inject_variation(model, self._chip(spec), spec)
        with no_grad():
            noisy = layer(Tensor(x)).data
        assert not np.allclose(noisy, clean)
        clear_variation(model)
        with no_grad():
            restored = layer(Tensor(x)).data
        assert np.allclose(restored, clean)

    def test_same_chip_is_deterministic(self, rng):
        layer = calibrated_linear(rng)
        model = nn.Sequential(layer)
        x = rng.normal(size=(2, 6)) * 0.2
        spec = VariabilitySpec.mixed(0.2, LayerFixedVariance())
        chip = self._chip(spec)
        inject_variation(model, chip, spec)
        with no_grad():
            first = layer(Tensor(x)).data.copy()
        inject_variation(model, chip, spec)
        with no_grad():
            second = layer(Tensor(x)).data
        assert np.array_equal(first, second)

    def test_between_chip_shifts_all_weights_together(self, rng):
        # With sigma_W = 0, weight-proportional variation must scale the
        # whole MVM output by exactly (1 + eps_B).
        layer = calibrated_linear(rng)
        layer.bias = None
        model = nn.Sequential(layer)
        x = rng.normal(size=(2, 6)) * 0.2
        with no_grad():
            clean = layer(Tensor(x)).data.copy()
        spec = VariabilitySpec(0.0, 0.3, WeightProportionalVariance())
        chip = self._chip(spec)
        inject_variation(model, chip, spec)
        with no_grad():
            noisy = layer(Tensor(x)).data
        assert np.allclose(noisy, (1.0 + chip.eps_between) * clean)

    def test_naive_and_reparam_forward_agree(self, rng):
        # The two injection modes differ only in gradients, never in values.
        layer = calibrated_linear(rng)
        model = nn.Sequential(layer)
        x = rng.normal(size=(2, 6)) * 0.2
        spec = VariabilitySpec.within_only(0.4, WeightProportionalVariance())
        chip = self._chip(spec)
        inject_variation(model, chip, spec, mode="reparameterized")
        with no_grad():
            reparam = layer(Tensor(x)).data.copy()
        inject_variation(model, chip, spec, mode="naive")
        with no_grad():
            naive = layer(Tensor(x)).data
        assert np.allclose(reparam, naive)

    def test_reparam_gradient_includes_one_plus_eps_factor(self, rng):
        # Eq. 4: for weight-proportional noise the weight gradient of the
        # reparameterized graph carries a (1 + eps) factor vs the naive one.
        spec = VariabilitySpec.within_only(0.4, WeightProportionalVariance())
        chip = self._chip(spec)
        grads = {}
        for mode in ("reparameterized", "naive"):
            layer = calibrated_linear(rng)
            layer.weight.data = np.full((4, 6), 0.21)
            layer.refresh_weight_scale()
            model = nn.Sequential(layer)
            inject_variation(model, chip, spec, mode=mode)
            x = Tensor(np.full((1, 6), 0.2))
            layer(x).sum().backward()
            grads[mode] = layer.weight.grad.copy()
        eps = chip.epsilon_for("0", (4, 6))
        assert np.allclose(grads["reparameterized"], grads["naive"] * (1.0 + eps))
