"""Model architectures: shapes, registry, trainability plumbing."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.models import LeNet5, ResNet18, VGG11, build_model, list_models
from repro.models.registry import register_model
from repro.nn import functional as F


class TestShapes:
    def test_lenet_mnist_shape(self, rng):
        model = LeNet5(width_multiplier=0.5)
        with no_grad():
            out = model(Tensor(rng.normal(size=(2, 1, 28, 28))))
        assert out.shape == (2, 10)

    def test_vgg_cifar_shape(self, rng):
        model = VGG11(width_multiplier=0.125)
        with no_grad():
            out = model(Tensor(rng.normal(size=(2, 3, 32, 32))))
        assert out.shape == (2, 10)

    def test_resnet_cifar100_shape(self, rng):
        model = ResNet18(width_multiplier=0.125)
        with no_grad():
            out = model(Tensor(rng.normal(size=(2, 3, 32, 32))))
        assert out.shape == (2, 100)

    def test_full_width_parameter_counts(self):
        # Sanity anchors: full LeNet-5 ~61k params; ResNet-18 ~11M.
        assert 50_000 < LeNet5().num_parameters() < 75_000
        assert 10_000_000 < ResNet18().num_parameters() < 12_000_000

    def test_width_multiplier_reduces_params(self):
        assert (
            ResNet18(width_multiplier=0.25).num_parameters()
            < ResNet18(width_multiplier=0.5).num_parameters()
        )


class TestRegistry:
    def test_all_registered_models_run(self, rng):
        for name in list_models():
            model = build_model(name)
            c, h, w = model.input_shape
            with no_grad():
                out = model(Tensor(rng.normal(size=(1, c, h, w))))
            assert out.shape == (1, model.num_classes), name

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("alexnet")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_model("lenet5")(lambda: None)

    def test_overrides(self):
        model = build_model("lenet5-mini", num_classes=7)
        assert model.num_classes == 7


class TestTrainability:
    def test_gradients_reach_all_parameters(self, rng):
        model = build_model("resnet10-mini")
        x = Tensor(rng.normal(size=(2, 3, 32, 32)))
        loss = F.cross_entropy(model(x), np.array([1, 2]))
        loss.backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing

    def test_residual_shortcut_present_on_stride(self):
        model = ResNet18(width_multiplier=0.125)
        blocks = list(model.stages)
        assert blocks[0].shortcut is None  # stage 1, stride 1, same width
        assert blocks[2].shortcut is not None  # stage 2 entry, stride 2
