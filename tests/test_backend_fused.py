"""Bit-exactness tests for :class:`repro.backends.FusedFleetForward`.

The fused fleet forward's contract is *the same bits* as per-chip
dispatch, on both backends, through every mutation a serving fleet goes
through: reprogramming, stuck-at fault maps, chip replacement, and drift
recalibration (``refresh``).  Everything here asserts ``array_equal``,
never ``allclose`` — a single flipped mantissa bit is a failure.
"""

import numpy as np
import pytest

from repro.backends import (
    CircuitBackend,
    FakeQuantBackend,
    FusedFleetForward,
    UnstackableError,
)
from repro.datasets.loaders import batch_iterator
from repro.datasets.synthetic import make_pattern_dataset
from repro.models import build_model
from repro.nn import init
from repro.quant.calibration import calibrate_model
from repro.quant.ptq import convert_to_quantized
from repro.quant.qconfig import QConfig
from repro.selftuning.tuner import SelfTuningConfig
from repro.variability.faults import FaultSpec
from repro.variability.models import WeightProportionalVariance
from repro.variability.sampler import VariabilitySampler, VariabilitySpec

BACKENDS = {"fake-quant": FakeQuantBackend, "circuit": CircuitBackend}


@pytest.fixture(scope="module")
def golden():
    """A small calibrated quantized model plus its dataset."""
    init.seed(0)
    dataset = make_pattern_dataset(5, 16, (1, 28, 28), seed=7, max_shift=1, noise=0.2)
    model = build_model("lenet5-mini", num_classes=5, in_channels=1)
    convert_to_quantized(model, QConfig.from_notation("A4W2"))
    calibrate_model(model, batch_iterator(dataset, 16, shuffle=False), max_batches=3)
    model.eval()
    return model, dataset


def _spec(sigma=0.2):
    return VariabilitySpec.mixed(sigma, WeightProportionalVariance())


def _fleet(model, backend_name, n=3, seed0=0):
    spec = _spec()
    backend = BACKENDS[backend_name]()
    return [
        backend.program(
            model,
            VariabilitySampler(spec, seed=seed0 + i).sample_chip(),
            spec=spec,
            chip_id=f"c{i:02d}",
        )
        for i in range(n)
    ]


def _assert_parity(fused, assignments):
    """Fused outputs must be bit-equal to each chip's own forward."""
    outputs = fused.forward(assignments)
    assert len(outputs) == len(assignments)
    for (chip, inputs), out in zip(assignments, outputs):
        assert np.array_equal(out, chip.forward(inputs))


@pytest.mark.parametrize("backend_name", sorted(BACKENDS))
class TestBitExactness:
    def test_equal_batches(self, golden, backend_name):
        model, dataset = golden
        fleet = _fleet(model, backend_name)
        fused = FusedFleetForward.build(fleet)
        x = dataset.images
        _assert_parity(fused, [(chip, x[i * 8 : (i + 1) * 8]) for i, chip in enumerate(fleet)])

    def test_unequal_batches(self, golden, backend_name):
        model, dataset = golden
        fleet = _fleet(model, backend_name)
        fused = FusedFleetForward.build(fleet)
        sizes = [16, 5, 1]
        start, assignments = 0, []
        for chip, size in zip(fleet, sizes):
            assignments.append((chip, dataset.images[start : start + size]))
            start += size
        _assert_parity(fused, assignments)

    def test_subset_and_duplicate_chips(self, golden, backend_name):
        """A group may use any subset of the stack, a chip more than once."""
        model, dataset = golden
        fleet = _fleet(model, backend_name)
        fused = FusedFleetForward.build(fleet)
        x = dataset.images
        _assert_parity(
            fused, [(fleet[2], x[:4]), (fleet[0], x[4:10]), (fleet[2], x[10:13])]
        )

    def test_single_assignment(self, golden, backend_name):
        model, dataset = golden
        fleet = _fleet(model, backend_name)
        fused = FusedFleetForward.build(fleet)
        _assert_parity(fused, [(fleet[1], dataset.images[:6])])

    def test_parity_after_refresh_rebuild(self, golden, backend_name):
        """Drift recalibration: refresh() invalidates, a rebuild is exact."""
        model, dataset = golden
        fleet = _fleet(model, backend_name)
        fused = FusedFleetForward.build(fleet)
        drifted = VariabilitySampler(_spec(), seed=99).sample_chip()
        fleet[1].refresh(drifted)
        assert not fused.covers(fleet)
        rebuilt = FusedFleetForward.build(fleet)
        assert rebuilt.covers(fleet)
        x = dataset.images
        _assert_parity(
            rebuilt, [(chip, x[i * 8 : (i + 1) * 8]) for i, chip in enumerate(fleet)]
        )

    def test_parity_after_fault_map_rebuild(self, golden, backend_name):
        """Stuck-at damage: apply_faults() invalidates, a rebuild is exact."""
        model, dataset = golden
        fleet = _fleet(model, backend_name)
        fused = FusedFleetForward.build(fleet)
        stuck = fleet[0].apply_faults(
            FaultSpec(p_stuck_off=0.05, p_stuck_on=0.02), seed=11
        )
        assert stuck > 0
        assert not fused.covers(fleet)
        rebuilt = FusedFleetForward.build(fleet)
        x = dataset.images
        _assert_parity(
            rebuilt, [(chip, x[i * 8 : (i + 1) * 8]) for i, chip in enumerate(fleet)]
        )

    def test_parity_after_chip_replacement(self, golden, backend_name):
        """Spare provisioning: a new chip object misses on identity; the
        rebuilt stack serves the replacement bit-exactly."""
        model, dataset = golden
        fleet = _fleet(model, backend_name)
        fused = FusedFleetForward.build(fleet)
        replacement = _fleet(model, backend_name, n=1, seed0=50)[0]
        fleet[2] = replacement
        assert not fused.covers(fleet)
        rebuilt = FusedFleetForward.build(fleet)
        x = dataset.images
        _assert_parity(
            rebuilt, [(chip, x[i * 8 : (i + 1) * 8]) for i, chip in enumerate(fleet)]
        )


class TestFreshness:
    def test_covers_same_objects(self, golden):
        model, _ = golden
        fleet = _fleet(model, "fake-quant")
        fused = FusedFleetForward.build(fleet)
        assert fused.covers(fleet)
        assert fused.covers(fleet[1:])

    def test_refresh_bumps_version_and_uncovers(self, golden):
        model, _ = golden
        fleet = _fleet(model, "fake-quant")
        fused = FusedFleetForward.build(fleet)
        before = fleet[0].version
        fleet[0].refresh(VariabilitySampler(_spec(), seed=7).sample_chip())
        assert fleet[0].version != before
        assert not fused.covers([fleet[0]])
        assert fused.covers(fleet[1:])

    def test_foreign_chip_not_covered(self, golden):
        model, _ = golden
        fleet = _fleet(model, "fake-quant")
        fused = FusedFleetForward.build(fleet[:2])
        assert not fused.covers([fleet[2]])

    def test_forward_rejects_foreign_chip(self, golden):
        model, dataset = golden
        fleet = _fleet(model, "fake-quant")
        fused = FusedFleetForward.build(fleet[:2])
        with pytest.raises(ValueError, match="outside this fused stack"):
            fused.forward([(fleet[2], dataset.images[:4])])

    def test_members_and_describe(self, golden):
        model, _ = golden
        fleet = _fleet(model, "fake-quant")
        fused = FusedFleetForward.build(fleet)
        assert fused.members == fleet
        info = fused.describe()
        assert info["backend"] == "fake-quant"
        assert info["chips"] == ["c00", "c01", "c02"]


class TestUnstackable:
    def test_empty_fleet(self):
        with pytest.raises(UnstackableError, match="empty fleet"):
            FusedFleetForward.build([])

    def test_mixed_backends(self, golden):
        model, _ = golden
        mixed = _fleet(model, "fake-quant", n=1) + _fleet(model, "circuit", n=1)
        with pytest.raises(UnstackableError, match="mixed or unknown"):
            FusedFleetForward.build(mixed)

    def test_self_tuning_chips_refused(self, golden):
        model, _ = golden
        spec = _spec()
        backend = FakeQuantBackend()
        chips = [
            backend.program(
                model,
                VariabilitySampler(spec, seed=i).sample_chip(),
                spec=spec,
                chip_id=f"t{i}",
                self_tuning=SelfTuningConfig(),
            )
            for i in range(2)
        ]
        with pytest.raises(UnstackableError):
            FusedFleetForward.build(chips)

    def test_noisy_adc_refused(self, golden):
        from repro.pim.converters import ADC

        model, _ = golden
        spec = _spec()
        backend = CircuitBackend(adc=ADC(noise_rms=0.01))
        chips = [
            backend.program(
                model,
                VariabilitySampler(spec, seed=i).sample_chip(),
                spec=spec,
                chip_id=f"n{i}",
            )
            for i in range(2)
        ]
        with pytest.raises(UnstackableError, match="ADC"):
            FusedFleetForward.build(chips)

    def test_different_golden_models_refused(self, golden):
        model, dataset = golden
        init.seed(1)
        other = build_model("lenet5-mini", num_classes=5, in_channels=1)
        convert_to_quantized(other, QConfig.from_notation("A4W2"))
        calibrate_model(
            other, batch_iterator(dataset, 16, shuffle=False), max_batches=3
        )
        other.eval()
        mixed = _fleet(model, "fake-quant", n=1) + _fleet(other, "fake-quant", n=1)
        with pytest.raises(UnstackableError):
            FusedFleetForward.build(mixed)
