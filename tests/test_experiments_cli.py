"""Tests for the result store and the experiments CLI."""

import json
import os

import numpy as np
import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.store import ResultStore


class TestResultStore:
    def test_save_and_load_round_trip(self, tmp_path):
        store = ResultStore(str(tmp_path))
        path = store.save("exp", {"mean": 0.75, "accuracies": [0.7, 0.8]})
        assert os.path.exists(path)
        record = store.load("exp")
        assert record["mean"] == 0.75
        assert record["accuracies"] == [0.7, 0.8]

    def test_run_indexes_increment(self, tmp_path):
        store = ResultStore(str(tmp_path))
        first = store.save("exp", {"v": 1})
        second = store.save("exp", {"v": 2})
        assert first != second
        assert store.load("exp")["v"] == 2  # latest by default
        assert store.load("exp", run=0)["v"] == 1

    def test_numpy_values_serialized(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.save(
            "np", {"a": np.float64(0.5), "b": np.int64(3), "c": np.arange(3)}
        )
        record = store.load("np")
        assert record == {"a": 0.5, "b": 3, "c": [0, 1, 2]}

    def test_list_names(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.save("alpha", {})
        store.save("beta", {})
        store.save("alpha", {})
        assert store.list_names() == ["alpha", "beta"]
        assert len(store.list_runs("alpha")) == 2

    def test_missing_record_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ResultStore(str(tmp_path)).load("ghost")

    def test_unsafe_name_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(str(tmp_path)).save("../evil", {})

    def test_nested_objects_serialized(self, tmp_path):
        from repro.variability.sampler import VariabilitySpec

        store = ResultStore(str(tmp_path))
        store.save("spec", {"spec": VariabilitySpec(0.1, 0.2)})
        record = store.load("spec")
        assert record["spec"]["sigma_within"] == 0.1


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.method == "qavat"
        assert args.scenario == "within"
        assert args.self_tuning == "none"

    def test_invalid_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--method", "magic"])

    def test_compare_has_no_method_flag(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--method", "qat"])

    def test_sweep_accepts_sigma_list(self):
        args = build_parser().parse_args(["sweep", "--sigmas", "0.1", "0.2"])
        assert args.sigmas == [0.1, 0.2]
        assert args.method == "qavat"

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.command == "serve-bench"
        assert args.num_chips == 4
        assert args.max_batch == 32
        assert args.policy == "round-robin"
        assert args.cache_capacity is None
        assert not args.skip_training

    def test_serve_bench_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-bench", "--policy", "chaos"])

    def test_serve_bench_rejects_bad_counts_at_parse_time(self):
        for flags in (
            ["--requests", "0"],
            ["--num-chips", "0"],
            ["--max-batch", "-3"],
            ["--max-wait", "-1"],
            ["--cache-capacity", "0"],
            ["--probe-k", "0"],
        ):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["serve-bench", *flags])

    def test_serve_bench_drift_flags(self):
        args = build_parser().parse_args(
            ["serve-bench", "--drift", "--policy", "accuracy-weighted",
             "--trace", "bursty", "--fleet", "rram:2,flash:2"]
        )
        assert args.drift
        assert args.trace == "bursty"
        assert args.fleet == "rram:2,flash:2"
        assert args.drift_kind == "aging"

    def test_drift_aware_policy_accepted(self):
        args = build_parser().parse_args(["serve-bench", "--policy", "drift-aware"])
        assert args.policy == "drift-aware"

    def test_lifetime_bench_defaults(self):
        args = build_parser().parse_args(["lifetime-bench"])
        assert args.command == "lifetime-bench"
        assert args.policy == "drift-aware"
        assert args.policies == ["round-robin", "accuracy-weighted", "drift-aware"]
        assert args.probe_every == 8.0

    def test_lifetime_bench_rejects_unknown_trace(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lifetime-bench", "--trace", "tsunami"])


class TestCliEndToEnd:
    def test_list_exit_code(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "qavat" in out and "tiny" in out

    @pytest.mark.slow
    def test_run_produces_record(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "--method", "qat",
                "--model", "lenet5",
                "--notation", "A4W2",
                "--sigma", "0.1",
                "--scale", "tiny",
                "--results-dir", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "mean %" in out
        store = ResultStore(str(tmp_path))
        record = store.load("run-qat-lenet5")
        assert record["notation"] == "A4W2"
        assert 0.0 <= record["summary"]["mean"] <= 1.0
        assert len(record["accuracies"]) > 0

    def test_serve_bench_skip_training(self, tmp_path, capsys):
        code = main(
            [
                "serve-bench",
                "--skip-training",
                "--requests", "48",
                "--max-batch", "16",
                "--num-chips", "2",
                "--results-dir", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out and "batched" in out
        record = ResultStore(str(tmp_path)).load("serve-bench-lenet5")
        assert record["requests"] == 48
        assert record["speedup"] > 0
        assert record["telemetry"]["requests"] == 48
        assert record["cache"]["misses"] >= 2

    def test_serve_bench_drift_races_policies(self, tmp_path, capsys):
        code = main(
            [
                "serve-bench",
                "--drift",
                "--policy", "accuracy-weighted",
                "--skip-training",
                "--requests", "64",
                "--max-batch", "8",
                "--trace-rate", "4",
                "--results-dir", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "drift-aware vs round-robin" in out
        assert "probed accuracy over time" in out
        record = ResultStore(str(tmp_path)).load("serve-bench-drift-lenet5")
        assert record["fleet"] == "rram:2,flash:2"
        policies = [entry["policy"] for entry in record["policies"]]
        assert policies == ["accuracy-weighted", "drift-aware", "round-robin"]
        for entry in record["policies"]:
            assert 0.0 <= entry["end_accuracy"] <= 1.0
            assert entry["telemetry"]["quality_series"]

    def test_lifetime_bench_end_to_end(self, tmp_path, capsys):
        code = main(
            [
                "lifetime-bench",
                "--skip-training",
                "--requests", "64",
                "--max-batch", "8",
                "--trace-rate", "4",
                "--policies", "round-robin", "drift-aware",
                "--results-dir", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "best end-of-trace policy" in out
        record = ResultStore(str(tmp_path)).load("lifetime-bench-lenet5")
        assert [entry["policy"] for entry in record["policies"]] == [
            "round-robin", "drift-aware",
        ]

    @pytest.mark.slow
    def test_run_with_self_tuning(self, tmp_path, capsys):
        code = main(
            [
                "run",
                "--model", "lenet5",
                "--sigma", "0.3",
                "--scenario", "mixed",
                "--self-tuning", "global",
                "--scale", "tiny",
                "--results-dir", str(tmp_path),
            ]
        )
        assert code == 0
        record = ResultStore(str(tmp_path)).load("run-qavat-lenet5")
        assert record["self_tuning"] == "global"
