"""Gradient correctness of every primitive op (finite differences)."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.autograd.ops import concat, log_softmax, pad2d
from repro.autograd.function import unbroadcast


def t(shape, rng, scale=1.0):
    return Tensor(rng.normal(size=shape) * scale, requires_grad=True)


class TestElementwiseGrads:
    def test_add_broadcast(self, rng):
        a, b = t((3, 4), rng), t((4,), rng)
        assert gradcheck(lambda a, b: (a + b).sum(), [a, b])

    def test_sub_broadcast(self, rng):
        a, b = t((2, 1, 4), rng), t((3, 1), rng)
        assert gradcheck(lambda a, b: (a - b).mean(), [a, b])

    def test_mul(self, rng):
        a, b = t((3, 4), rng), t((3, 4), rng)
        assert gradcheck(lambda a, b: (a * b).sum(), [a, b])

    def test_div(self, rng):
        a = t((3, 3), rng)
        b = Tensor(rng.uniform(0.5, 2.0, size=(3, 3)), requires_grad=True)
        assert gradcheck(lambda a, b: (a / b).sum(), [a, b])

    def test_pow(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(4,)), requires_grad=True)
        assert gradcheck(lambda a: (a**3).sum(), [a])

    def test_exp_log_sqrt(self, rng):
        a = Tensor(rng.uniform(0.5, 2.0, size=(5,)), requires_grad=True)
        assert gradcheck(lambda a: (a.exp() + a.log() + a.sqrt()).sum(), [a])

    def test_abs(self, rng):
        a = Tensor(rng.uniform(0.2, 1.0, size=(4,)) * np.array([1, -1, 1, -1]), requires_grad=True)
        assert gradcheck(lambda a: a.abs().sum(), [a])

    def test_relu(self, rng):
        a = Tensor([-1.0, -0.3, 0.4, 2.0], requires_grad=True)
        assert gradcheck(lambda a: (a.relu() * a).sum(), [a])

    def test_clip_gradient_masked(self):
        a = Tensor([-2.0, -0.5, 0.5, 2.0], requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 1.0, 0.0])


class TestMatmulGrads:
    def test_2d(self, rng):
        a, b = t((3, 4), rng), t((4, 2), rng)
        assert gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_batched(self, rng):
        a, b = t((2, 3, 4), rng), t((2, 4, 5), rng)
        assert gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_batched_broadcast_rhs(self, rng):
        a, b = t((2, 3, 4), rng), t((4, 5), rng)
        assert gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_vector_vector(self, rng):
        a, b = t((4,), rng), t((4,), rng)
        assert gradcheck(lambda a, b: a @ b, [a, b])

    def test_matrix_vector(self, rng):
        a, b = t((3, 4), rng), t((4,), rng)
        assert gradcheck(lambda a, b: (a @ b).sum(), [a, b])

    def test_vector_matrix(self, rng):
        a, b = t((4,), rng), t((4, 3), rng)
        assert gradcheck(lambda a, b: (a @ b).sum(), [a, b])


class TestReductionGrads:
    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False), (1, True), ((0, 1), False)])
    def test_sum(self, rng, axis, keepdims):
        a = t((3, 4), rng)
        assert gradcheck(lambda a: (a.sum(axis=axis, keepdims=keepdims) ** 2).sum(), [a])

    @pytest.mark.parametrize("axis", [None, 0, 1, (0, 2)])
    def test_mean(self, rng, axis):
        a = t((2, 3, 4), rng)
        assert gradcheck(lambda a: (a.mean(axis=axis) ** 2).sum(), [a])

    def test_max_routes_gradient_to_argmax(self):
        a = Tensor([[1.0, 5.0, 3.0]], requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [[0.0, 1.0, 0.0]])

    def test_min_axis(self, rng):
        a = t((4, 5), rng)
        assert gradcheck(lambda a: (a.min(axis=1) ** 2).sum(), [a])

    def test_max_tie_splits_gradient(self):
        a = Tensor([[2.0, 2.0]], requires_grad=True)
        a.max().backward()
        assert np.allclose(a.grad, [[0.5, 0.5]])


class TestShapeGrads:
    def test_reshape(self, rng):
        a = t((2, 6), rng)
        assert gradcheck(lambda a: (a.reshape(3, 4) ** 2).sum(), [a])

    def test_transpose(self, rng):
        a = t((2, 3, 4), rng)
        assert gradcheck(lambda a: (a.transpose(2, 0, 1) ** 2).sum(), [a])

    def test_default_transpose_reverses(self, rng):
        a = t((2, 3, 4), rng)
        assert a.transpose().shape == (4, 3, 2)

    def test_concat(self, rng):
        a, b = t((2, 3), rng), t((2, 2), rng)
        assert gradcheck(lambda a, b: (concat([a, b], axis=1) ** 2).sum(), [a, b])

    def test_pad2d(self, rng):
        a = t((1, 2, 3, 3), rng)
        out = pad2d(a, (1, 2))
        assert out.shape == (1, 2, 5, 7)
        assert gradcheck(lambda a: (pad2d(a, (1, 2)) ** 2).sum(), [a])


class TestLogSoftmax:
    def test_rows_normalize(self, rng):
        a = t((4, 7), rng, scale=3.0)
        probs = np.exp(log_softmax(a).data)
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_gradient(self, rng):
        a = t((3, 5), rng)
        assert gradcheck(lambda a: (log_softmax(a) ** 2).sum(), [a])

    def test_shift_invariance(self, rng):
        a = t((2, 4), rng)
        shifted = Tensor(a.data + 100.0)
        assert np.allclose(log_softmax(a).data, log_softmax(shifted).data)


class TestUnbroadcast:
    def test_no_op_when_shapes_match(self, rng):
        g = rng.normal(size=(3, 4))
        assert unbroadcast(g, (3, 4)) is g

    def test_sums_leading_axes(self, rng):
        g = rng.normal(size=(5, 3, 4))
        out = unbroadcast(g, (3, 4))
        assert np.allclose(out, g.sum(axis=0))

    def test_sums_size_one_axes(self, rng):
        g = rng.normal(size=(3, 4))
        out = unbroadcast(g, (3, 1))
        assert out.shape == (3, 1)
        assert np.allclose(out, g.sum(axis=1, keepdims=True))
