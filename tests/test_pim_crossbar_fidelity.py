"""Integration tests: CrossbarArray with device, IR-drop and fault models."""

import numpy as np
import pytest

from repro.pim.converters import ADC, DAC
from repro.pim.crossbar import CrossbarArray
from repro.pim.devices import flash, ideal, rram
from repro.pim.nonidealities import IRDropModel, StuckAtFaultModel
from repro.variability.models import WeightProportionalVariance
from repro.variability.sampler import VariabilitySampler, VariabilitySpec


def _array(**kwargs):
    return CrossbarArray(8, 4, dac=DAC(bits=8), adc=ADC(ideal=True), **kwargs)


def _conductances(rng=None):
    rng = rng or np.random.default_rng(0)
    return rng.random((8, 4))


class TestIdealPath:
    def test_ideal_array_is_exact(self):
        array = _array()
        g = _conductances()
        array.program(g)
        codes = np.arange(8)[None, :].astype(float)
        assert np.allclose(array.mvm(codes), codes @ g)

    def test_ideal_device_matches_no_device_on_grid_values(self):
        """With targets already on the level grid, an ideal device is a no-op."""
        device = ideal(bits_per_cell=8)
        g = device.nearest_level(_conductances())
        bare, modeled = _array(), _array(device=device)
        bare.program(g)
        modeled.program(g)
        assert np.allclose(bare.physical, modeled.physical)


class TestDeviceIntegration:
    def test_program_snaps_to_device_levels(self):
        device = ideal(bits_per_cell=2)  # 4 levels
        array = _array(device=device)
        array.program(_conductances())
        levels = device.levels()
        assert all(np.isclose(levels, v).any() for v in array.physical.ravel())

    def test_programming_noise_perturbs(self):
        array = _array(device=rram(sigma_program=0.2))
        g = _conductances()
        array.program(g)
        assert not np.allclose(array.physical, array.ideal)

    def test_read_noise_makes_mvm_stochastic(self):
        array = _array(device=rram(sigma_program=0.0))
        array.program(_conductances())
        codes = np.ones((1, 8))
        first, second = array.mvm(codes), array.mvm(codes)
        assert not np.allclose(first, second)

    def test_variation_applies_on_top_of_programmed_state(self):
        device = flash(sigma_program=0.05)
        array = _array(device=device)
        array.program(_conductances())
        programmed = array.programmed.copy()
        spec = VariabilitySpec(0.1, 0.1, WeightProportionalVariance())
        chip = VariabilitySampler(spec, seed=1).sample_chip()
        array.apply_variation(chip, spec.variance_model)
        assert not np.allclose(array.physical, programmed)
        array.clear_variation()
        assert np.allclose(array.physical, programmed)


class TestIRDropIntegration:
    def test_ir_drop_reduces_outputs(self):
        bare = _array()
        droopy = _array(ir_drop=IRDropModel(wire_resistance=0.05))
        g = _conductances()
        bare.program(g)
        droopy.program(g)
        codes = np.ones((1, 8))
        assert np.all(droopy.mvm(codes) <= bare.mvm(codes))

    def test_physical_state_unchanged_by_ir_drop(self):
        """IR drop is a read-time effect; it must not corrupt stored state."""
        array = _array(ir_drop=IRDropModel(wire_resistance=0.05))
        g = _conductances()
        array.program(g)
        array.mvm(np.ones((1, 8)))
        assert np.allclose(array.physical, g)


class TestFaultIntegration:
    def test_fault_map_is_persistent(self):
        array = _array(fault_model=StuckAtFaultModel(p_stuck_off=0.3))
        g = np.full((8, 4), 0.5)
        array.program(g)
        first = array.physical.copy()
        array.program(g)  # reprogramming hits the same stuck cells
        assert np.array_equal(array.physical, first)

    def test_stuck_off_cells_are_zero(self):
        array = _array(fault_model=StuckAtFaultModel(p_stuck_off=0.5))
        array.program(np.full((8, 4), 0.5))
        faulted = array.physical == 0.0
        assert faulted.any()
        assert np.all(array.physical[~faulted] == 0.5)

    def test_fault_rate_zero_is_clean(self):
        array = _array(fault_model=StuckAtFaultModel())
        g = _conductances()
        array.program(g)
        assert np.allclose(array.physical, g)


class TestComposedFidelity:
    def test_full_stack_runs_and_degrades_gracefully(self):
        """Device + IR drop + faults compose; output stays finite and close
        to ideal for mild non-idealities."""
        array = _array(
            device=flash(sigma_program=0.01),
            ir_drop=IRDropModel(wire_resistance=0.001),
            fault_model=StuckAtFaultModel(p_stuck_off=0.01),
        )
        g = _conductances()
        array.program(g)
        codes = np.random.default_rng(3).integers(0, 4, size=(5, 8)).astype(float)
        out = array.mvm(codes)
        reference = codes @ g
        assert np.all(np.isfinite(out))
        # Mild non-idealities: within 20% of ideal on average magnitude.
        scale = np.abs(reference).mean()
        assert np.abs(out - reference).mean() < 0.2 * scale
