"""Unit and property tests for the memory-cell device models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pim.devices import DeviceModel, device_by_name, flash, ideal, mram, rram


class TestLevelGrid:
    def test_num_levels(self):
        assert DeviceModel(bits_per_cell=3).num_levels == 8
        assert flash().num_levels == 32  # 5 bits/cell, paper ref [9]
        assert mram().num_levels == 2

    def test_levels_span_range(self):
        device = DeviceModel(g_min=0.2, g_max=1.0, bits_per_cell=4)
        levels = device.levels()
        assert levels[0] == pytest.approx(0.2)
        assert levels[-1] == pytest.approx(1.0)
        assert len(levels) == 16
        assert np.all(np.diff(levels) > 0)

    def test_level_step_uniform(self):
        device = DeviceModel(g_min=0.0, g_max=1.0, bits_per_cell=2)
        steps = np.diff(device.levels())
        assert np.allclose(steps, device.level_step())

    def test_nearest_level_snaps_to_grid(self):
        device = DeviceModel(bits_per_cell=2)  # levels 0, 1/3, 2/3, 1
        snapped = device.nearest_level(np.array([0.1, 0.4, 0.9]))
        assert snapped == pytest.approx([0.0, 1 / 3, 1.0])

    def test_nearest_level_clips_out_of_range(self):
        device = DeviceModel(bits_per_cell=4)
        assert device.nearest_level(np.array([-5.0])) == pytest.approx(0.0)
        assert device.nearest_level(np.array([5.0])) == pytest.approx(1.0)

    def test_quantization_error_rms(self):
        device = DeviceModel(bits_per_cell=4)
        assert device.quantization_error_rms() == pytest.approx(
            device.level_step() / np.sqrt(12)
        )


class TestValidation:
    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            DeviceModel(g_min=1.0, g_max=0.5)

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            DeviceModel(bits_per_cell=0)

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            DeviceModel(sigma_program=-0.1)

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            device_by_name("pcm-imaginary")

    def test_rejects_negative_drift_scale(self):
        with pytest.raises(ValueError):
            DeviceModel(drift_scale=-0.5)


class TestDriftScale:
    def test_severity_ordering_across_technologies(self):
        """RRAM-class decay dominates; flash retention is tight; MRAM is
        bistable; the ideal device does not drift at all."""
        scales = {
            name: device_by_name(name).drift_scale
            for name in ("rram", "flash", "mram", "ideal")
        }
        assert scales["rram"] > scales["flash"] > scales["mram"] > scales["ideal"]
        assert scales["ideal"] == 0.0

    def test_default_device_drifts_at_full_severity(self):
        assert DeviceModel().drift_scale == 1.0


class TestProgramming:
    def test_noise_free_program_is_snapping(self):
        device = ideal(bits_per_cell=3)
        target = np.linspace(0, 1, 17)
        assert np.allclose(device.program(target), device.nearest_level(target))

    def test_program_without_rng_is_deterministic(self):
        device = rram(sigma_program=0.2)
        target = np.full(10, 0.5)
        assert np.allclose(device.program(target), device.program(target))

    def test_program_noise_statistics_proportional(self):
        device = rram(sigma_program=0.1, bits_per_cell=8)
        rng = np.random.default_rng(0)
        target = np.full(200_000, 0.5)
        programmed = device.program(target, rng)
        snapped = device.nearest_level(target)
        errors = programmed - snapped
        assert abs(errors.mean()) < 1e-3
        assert errors.std() == pytest.approx(0.1 * snapped[0], rel=0.05)

    def test_program_noise_statistics_fixed(self):
        device = flash(sigma_program=0.05)
        rng = np.random.default_rng(1)
        # Mid-range targets so clipping does not bias the statistics.
        target = np.full(200_000, 0.5)
        errors = device.program(target, rng) - device.nearest_level(target)
        assert errors.std() == pytest.approx(0.05 * device.g_max, rel=0.05)

    def test_program_clips_to_range(self):
        device = rram(sigma_program=2.0)  # absurd noise to force excursions
        rng = np.random.default_rng(2)
        programmed = device.program(np.full(10_000, 0.9), rng)
        assert programmed.min() >= device.g_min
        assert programmed.max() <= device.g_max


class TestRead:
    def test_noise_free_read_returns_copy(self):
        device = ideal()
        programmed = np.array([0.25, 0.75])
        reading = device.read(programmed)
        assert np.array_equal(reading, programmed)
        reading[0] = -1.0
        assert programmed[0] == 0.25  # not aliased

    def test_read_noise_statistics(self):
        device = DeviceModel(sigma_read=0.02, proportional=False)
        rng = np.random.default_rng(3)
        programmed = np.full(100_000, 0.5)
        errors = device.read(programmed, rng) - programmed
        assert errors.std() == pytest.approx(0.02, rel=0.05)

    def test_read_does_not_mutate_state(self):
        device = rram()
        programmed = np.array([0.5])
        rng = np.random.default_rng(4)
        device.read(programmed, rng)
        assert programmed[0] == 0.5


class TestPaperMapping:
    def test_rram_is_weight_proportional(self):
        assert rram().variance_model_name == "weight-proportional"

    def test_flash_is_layer_fixed(self):
        assert flash().variance_model_name == "layer-fixed"

    def test_effective_sigma_matches_programming(self):
        assert rram(sigma_program=0.3).effective_sigma() == 0.3

    def test_presets_by_name(self):
        for name in ("rram", "flash", "mram", "ideal"):
            assert device_by_name(name).name == name

    def test_preset_overrides(self):
        assert device_by_name("rram", sigma_program=0.42).sigma_program == 0.42


@given(
    bits=st.integers(min_value=1, max_value=8),
    g_max=st.floats(min_value=0.1, max_value=10.0),
    value=st.floats(min_value=-1.0, max_value=11.0),
)
@settings(max_examples=100, deadline=None)
def test_nearest_level_is_idempotent_and_in_grid(bits, g_max, value):
    device = DeviceModel(g_min=0.0, g_max=g_max, bits_per_cell=bits)
    snapped = device.nearest_level(np.array([value]))
    # Idempotent and on the grid.
    assert np.allclose(device.nearest_level(snapped), snapped)
    distances = np.abs(device.levels() - snapped[0])
    assert distances.min() < 1e-9


@given(
    bits=st.integers(min_value=2, max_value=6),
    value=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=100, deadline=None)
def test_snapping_error_bounded_by_half_step(bits, value):
    device = DeviceModel(bits_per_cell=bits)
    snapped = device.nearest_level(np.array([value]))[0]
    assert abs(snapped - value) <= device.level_step() / 2 + 1e-12
