"""Experiment harness: configs, formatting, and a tiny end-to-end run."""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENT_SCALES,
    MethodConfig,
    dataset_for,
    format_series,
    format_table,
    model_for,
    run_method,
)
from repro.quant import QConfig
from repro.variability import VariabilitySpec, WeightProportionalVariance


class TestConfigs:
    def test_scales_exist(self):
        assert {"tiny", "small", "paper"} <= set(EXPERIMENT_SCALES)

    def test_paper_scale_uses_full_width_and_2000_chips(self):
        paper = EXPERIMENT_SCALES["paper"]
        assert paper.width_multiplier == 1.0
        assert paper.num_chips == 2000

    def test_dataset_for_shapes(self):
        scale = EXPERIMENT_SCALES["tiny"]
        train, test = dataset_for("mnist", scale)
        assert train.sample_shape == (1, 28, 28)
        train, _ = dataset_for("cifar100", scale)
        assert train.num_classes == 100

    def test_dataset_unknown_workload(self):
        with pytest.raises(KeyError):
            dataset_for("imagenet", EXPERIMENT_SCALES["tiny"])

    def test_model_for_builds_each_family(self):
        scale = EXPERIMENT_SCALES["tiny"]
        for model_name, workload in [("lenet5", "mnist"), ("vgg11", "cifar10"), ("resnet18", "cifar100")]:
            model = model_for(model_name, workload, scale)
            assert model.num_classes == (100 if workload == "cifar100" else 10)

    def test_model_seed_determinism(self):
        scale = EXPERIMENT_SCALES["tiny"]
        a = model_for("lenet5", "mnist", scale, seed=3)
        b = model_for("lenet5", "mnist", scale, seed=3)
        assert np.array_equal(
            a.features[0].weight.data, b.features[0].weight.data
        )


class TestTables:
    def test_format_table_aligns(self):
        text = format_table(["a", "bbbb"], [[1, 2.5], ["x", 3.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "2.50" in text
        assert "3.25" in text

    def test_format_series(self):
        text = format_series("sigma", [0.1, 0.5], {"qavat": [60.0, 50.0], "qat": [58.0, 13.0]})
        assert "sigma" in text
        assert "qavat" in text
        assert "13.00" in text


@pytest.mark.slow
class TestRunnerEndToEnd:
    def test_run_method_produces_result(self):
        scale = EXPERIMENT_SCALES["tiny"]
        spec = VariabilitySpec.within_only(0.2, WeightProportionalVariance())
        result = run_method(
            "qat",
            "lenet5",
            "mnist",
            QConfig.from_notation("A8W4"),
            spec,
            spec,
            scale,
            MethodConfig(seed=0),
        )
        assert 0.0 <= result.mean_accuracy <= 1.0
        assert result.clean_accuracy > 0.5  # QAT at A8W4 must learn the task
        assert result.notation == "A8W4"

    def test_bad_method_rejected(self):
        scale = EXPERIMENT_SCALES["tiny"]
        spec = VariabilitySpec.null()
        with pytest.raises(ValueError):
            run_method("dropout", "lenet5", "mnist", QConfig(), spec, spec, scale)

    def test_backend_evaluation_matches_legacy_in_place_path(self):
        """The fake-quant backend must reproduce the historical in-place
        injection numbers exactly — experiments cannot drift when the
        evaluation is re-routed through repro.backends."""
        scale = EXPERIMENT_SCALES["tiny"]
        spec = VariabilitySpec.within_only(0.3, WeightProportionalVariance())
        args = ("qat", "lenet5", "mnist", QConfig.from_notation("A8W4"), spec, spec,
                scale, MethodConfig(seed=1))
        legacy = run_method(*args, backend=None)
        routed = run_method(*args, backend="fake-quant")
        assert routed.robustness.accuracies == legacy.robustness.accuracies
        assert routed.clean_accuracy == legacy.clean_accuracy
        assert routed.extras["backend"] == "fake-quant"
        assert legacy.extras["backend"] == "in-place"

    def test_circuit_backend_evaluation(self):
        """Scoring a trained method on crossbar-level hardware end to end."""
        from dataclasses import replace

        scale = replace(EXPERIMENT_SCALES["tiny"], num_chips=2)
        spec = VariabilitySpec.within_only(0.2, WeightProportionalVariance())
        result = run_method(
            "qat",
            "lenet5",
            "mnist",
            QConfig.from_notation("A8W4"),
            spec,
            spec,
            scale,
            MethodConfig(seed=0),
            backend="circuit",
        )
        assert result.extras["backend"] == "circuit"
        assert len(result.robustness.accuracies) == 2
        assert all(0.0 <= acc <= 1.0 for acc in result.robustness.accuracies)
