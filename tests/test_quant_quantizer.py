"""Quantizer semantics (Eq. 3) and STE gradients (Eq. 4)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.quant import QuantSpec, dequantize, fake_quantize, quantization_levels, quantize


class TestQuantSpec:
    def test_symmetric_range(self):
        spec = QuantSpec(4)
        assert spec.qmax == 7
        assert spec.qmin == -7
        assert spec.num_levels == 15

    def test_ternary_weights(self):
        # k=2 gives the ternary {-1, 0, +1} grid the paper uses for W2.
        spec = QuantSpec(2)
        assert spec.qmin == -1
        assert spec.qmax == 1
        assert spec.num_levels == 3

    def test_rejects_one_bit(self):
        with pytest.raises(ValueError):
            QuantSpec(1)

    def test_levels(self):
        levels = quantization_levels(QuantSpec(2), 0.5)
        assert np.allclose(levels, [-0.5, 0.0, 0.5])


class TestQuantizeDequantize:
    def test_rounding(self):
        spec = QuantSpec(4)
        codes = quantize(np.array([0.26, -0.26, 0.24]), 0.25, spec)
        assert np.array_equal(codes, [1, -1, 1])

    def test_clipping(self):
        spec = QuantSpec(2)
        codes = quantize(np.array([10.0, -10.0]), 0.5, spec)
        assert np.array_equal(codes, [1, -1])

    def test_round_trip_on_grid(self):
        spec = QuantSpec(4)
        values = quantization_levels(spec, 0.3)
        assert np.allclose(dequantize(quantize(values, 0.3, spec), 0.3), values)

    def test_error_bounded_by_half_lsb_inside_range(self, rng):
        spec = QuantSpec(6)
        scale = 0.1
        x = rng.uniform(-spec.qmax * scale, spec.qmax * scale, size=1000)
        err = np.abs(dequantize(quantize(x, scale, spec), scale) - x)
        assert err.max() <= scale / 2 + 1e-12


class TestFakeQuantize:
    def test_forward_value(self):
        spec = QuantSpec(4)
        x = Tensor([0.26, 2.0], requires_grad=True)
        out = fake_quantize(x, 0.25, spec)
        assert np.allclose(out.data, [0.25, 1.75])  # 2.0 clips to 7*0.25

    def test_identity_ste(self):
        spec = QuantSpec(4)
        x = Tensor([0.26, 100.0], requires_grad=True)
        fake_quantize(x, 0.25, spec, clip_gradient=False).sum().backward()
        assert np.allclose(x.grad, [1.0, 1.0])

    def test_clipped_ste_masks_out_of_range(self):
        spec = QuantSpec(4)
        x = Tensor([0.26, 100.0], requires_grad=True)
        fake_quantize(x, 0.25, spec, clip_gradient=True).sum().backward()
        assert np.allclose(x.grad, [1.0, 0.0])

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            fake_quantize(Tensor([1.0]), 0.0, QuantSpec(4))

    def test_preserves_shape(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4)))
        out = fake_quantize(x, 0.1, QuantSpec(8))
        assert out.shape == (2, 3, 4)
