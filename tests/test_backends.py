"""Tests for the ``repro.backends`` chip-programming API."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.backends import (
    BACKENDS,
    ChipBackend,
    CircuitBackend,
    FakeQuantBackend,
    ProgrammedChip,
    make_backend,
    register_backend,
    replicate_for_programming,
)
from repro.datasets.loaders import batch_iterator
from repro.datasets.synthetic import make_pattern_dataset
from repro.models import build_model
from repro.nn import init
from repro.pim.energy import CostReport
from repro.quant.calibration import calibrate_model
from repro.quant.ptq import convert_to_quantized, quantized_layers
from repro.quant.qconfig import QConfig
from repro.selftuning.tuner import SelfTuningConfig
from repro.selftuning.wrap import attach_self_tuning
from repro.variability.injection import inject_variation
from repro.variability.models import WeightProportionalVariance
from repro.variability.sampler import VariabilitySampler, VariabilitySpec


@pytest.fixture(scope="module")
def golden():
    """A small calibrated quantized model plus its dataset."""
    init.seed(0)
    dataset = make_pattern_dataset(5, 16, (1, 28, 28), seed=7, max_shift=1, noise=0.2)
    model = build_model("lenet5-mini", num_classes=5, in_channels=1)
    convert_to_quantized(model, QConfig.from_notation("A4W2"))
    calibrate_model(model, batch_iterator(dataset, 16, shuffle=False), max_batches=3)
    model.eval()
    return model, dataset


def _spec(sigma=0.2):
    return VariabilitySpec.mixed(sigma, WeightProportionalVariance())


def _chip(spec, seed=0):
    return VariabilitySampler(spec, seed=seed).sample_chip()


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert {"fake-quant", "circuit"} <= set(BACKENDS)

    def test_make_backend_by_name(self):
        assert isinstance(make_backend("fake-quant"), FakeQuantBackend)
        assert isinstance(make_backend("circuit"), CircuitBackend)

    def test_make_backend_passes_instances_through(self):
        backend = CircuitBackend(array_rows=64, array_cols=64)
        assert make_backend(backend) is backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(KeyError, match="unknown backend"):
            make_backend("quantum")

    def test_register_requires_unique_name(self):
        with pytest.raises(ValueError):
            register_backend(type("Anon", (ChipBackend,), {"name": "base"}))

    def test_bad_injection_mode_rejected(self):
        with pytest.raises(ValueError):
            FakeQuantBackend(injection_mode="telepathic")

    def test_bad_array_geometry_rejected(self):
        with pytest.raises(ValueError):
            CircuitBackend(array_cols=1)  # differential pairs need >= 2


class TestReplicateForProgramming:
    """The perf fix: programming must not deep-copy the whole model."""

    def test_non_quantized_parameters_are_shared(self, golden):
        model, _ = golden
        clone = replicate_for_programming(model)
        quantized = {id(layer.weight.data) for _, layer in quantized_layers(model)}
        shared = unshared = 0
        for original, copy in zip(model.parameters(), clone.parameters()):
            if id(original.data) in quantized:
                assert copy.data is not original.data, "crossbar weights must copy"
                unshared += 1
            else:
                assert copy.data is original.data, "digital params must alias"
                shared += 1
        assert unshared == sum(1 for _ in quantized_layers(model))
        assert shared > 0  # biases, BN affines, ...

    def test_buffers_are_shared(self, golden):
        model, _ = golden
        clone = replicate_for_programming(model)
        originals = dict(model.named_modules())
        checked = 0
        for name, module in clone.named_modules():
            for buffer_name, buffer in module._buffers.items():
                assert buffer is originals[name]._buffers[buffer_name]
                checked += 1
        assert checked > 0

    def test_programming_n_chips_memory_scales_with_quantized_weights_only(
        self, golden
    ):
        """The satellite assertion: N programmed chips cost N copies of the
        quantized weight tensors — zero bytes per non-quantized parameter
        or buffer."""
        model, _ = golden
        spec = _spec()
        backend = FakeQuantBackend(costed=False)
        chips = [
            backend.program(model, _chip(spec, seed=i), spec=spec, chip_id=f"c{i}")
            for i in range(4)
        ]
        quantized_bytes = sum(
            layer.weight.data.nbytes for _, layer in quantized_layers(model)
        )
        golden_arrays = {id(p.data) for p in model.parameters()}
        for module in model.modules():
            golden_arrays |= {id(b) for b in module._buffers.values()}
        fresh_bytes = 0
        for programmed in chips:
            for parameter in programmed.mapping.parameters():
                if id(parameter.data) not in golden_arrays:
                    fresh_bytes += parameter.data.nbytes
            for module in programmed.mapping.modules():
                for buffer in module._buffers.values():
                    assert id(buffer) in golden_arrays
        assert fresh_bytes == len(chips) * quantized_bytes

    def test_replica_modules_are_independent(self, golden):
        """Per-chip attributes (epsilon, tuner, mode) must not leak back."""
        model, _ = golden
        spec = _spec()
        clone = replicate_for_programming(model)
        inject_variation(clone, _chip(spec), spec)
        attach_self_tuning(clone, SelfTuningConfig())
        for _, layer in quantized_layers(model):
            assert not layer.has_variation
            assert layer.self_tuner is None
        for _, layer in quantized_layers(clone):
            assert layer.has_variation
            assert layer.self_tuner is not None

    def test_replica_forward_matches_original(self, golden):
        model, dataset = golden
        clone = replicate_for_programming(model)
        x = dataset.images[:6]
        with no_grad():
            assert np.array_equal(
                clone(Tensor(x)).data, model(Tensor(x)).data
            )


class TestFakeQuantBackend:
    def test_matches_legacy_deepcopy_inject_path(self, golden):
        """The extracted programming logic is bit-identical to what
        ``InferenceEngine._program`` used to do inline."""
        import copy

        model, dataset = golden
        spec = _spec()
        chip = _chip(spec, seed=3)
        legacy = copy.deepcopy(model)
        legacy.eval()
        inject_variation(legacy, chip, spec)
        programmed = FakeQuantBackend().program(model, chip, spec=spec, chip_id="c")
        x = dataset.images[:8]
        with no_grad():
            reference = legacy(Tensor(x)).data
        assert np.array_equal(programmed.forward(x), reference)

    def test_self_tuning_attached_on_request(self, golden):
        model, _ = golden
        spec = _spec()
        programmed = FakeQuantBackend().program(
            model, _chip(spec), spec=spec, self_tuning=SelfTuningConfig()
        )
        assert programmed.tuner is not None
        assert all(
            layer.self_tuner is programmed.tuner
            for _, layer in quantized_layers(programmed.mapping)
        )

    def test_refresh_installs_new_variation_in_place(self, golden):
        model, dataset = golden
        spec = _spec()
        programmed = FakeQuantBackend().program(model, _chip(spec, seed=1), spec=spec)
        x = dataset.images[:4]
        before = programmed.forward(x)
        mapping = programmed.mapping
        programmed.refresh(_chip(spec, seed=2))
        assert programmed.mapping is mapping  # no reprogramming
        assert not np.array_equal(programmed.forward(x), before)

    def test_describe_reports_provenance(self, golden):
        model, _ = golden
        spec = _spec()
        programmed = FakeQuantBackend().program(model, _chip(spec), spec=spec)
        info = programmed.describe()
        assert info["backend"] == "fake-quant"
        assert info["quantized_layers"] == sum(1 for _ in quantized_layers(model))
        assert info["self_tuning"] is False


class TestCircuitBackend:
    def test_programs_real_crossbar_tiles(self, golden):
        model, _ = golden
        spec = _spec()
        programmed = CircuitBackend(array_rows=64, array_cols=64).program(
            model, _chip(spec), spec=spec, chip_id="hw0"
        )
        info = programmed.describe()
        assert info["backend"] == "circuit"
        assert info["arrays"] >= info["quantized_layers"]
        assert info["adc_bits"] is None  # ideal by default
        assert programmed.chip.total_arrays == info["arrays"]

    def test_matches_fake_quant_closely(self, golden):
        model, dataset = golden
        spec = _spec()
        chip = _chip(spec, seed=9)
        fq = FakeQuantBackend().program(model, chip, spec=spec)
        hw = CircuitBackend(array_rows=64, array_cols=64).program(
            model, chip, spec=spec
        )
        x = dataset.images[:8]
        a, b = fq.forward(x), hw.forward(x)
        assert np.allclose(a, b, atol=1e-9)
        assert np.array_equal(a.argmax(axis=-1), b.argmax(axis=-1))

    def test_self_tuning_unsupported(self, golden):
        model, _ = golden
        spec = _spec()
        with pytest.raises(NotImplementedError, match="GTM/LTM"):
            CircuitBackend(array_rows=64, array_cols=64).program(
                model, _chip(spec), spec=spec, self_tuning=SelfTuningConfig()
            )

    def test_refresh_reprograms_deployed_layers(self, golden):
        model, dataset = golden
        spec = _spec()
        programmed = CircuitBackend(array_rows=64, array_cols=64).program(
            model, _chip(spec, seed=1), spec=spec
        )
        x = dataset.images[:4]
        before = programmed.forward(x)
        programmed.refresh(_chip(spec, seed=2))
        assert not np.array_equal(programmed.forward(x), before)


class TestCostHook:
    def test_cost_scales_with_batch(self, golden):
        model, _ = golden
        spec = _spec()
        programmed = FakeQuantBackend().program(model, _chip(spec), spec=spec)
        one = programmed.cost((1, 1, 28, 28))
        eight = programmed.cost((8, 1, 28, 28))
        assert isinstance(one, CostReport)
        assert one.energy_pj > 0
        assert np.isclose(eight.energy_pj, 8 * one.energy_pj)
        assert eight.area_um2 == one.area_um2  # hardware footprint is fixed

    def test_costless_backend_returns_none(self, golden):
        model, _ = golden
        spec = _spec()
        programmed = FakeQuantBackend(costed=False).program(
            model, _chip(spec), spec=spec
        )
        assert programmed.cost((4, 1, 28, 28)) is None

    def test_circuit_cost_matches_its_array_geometry(self, golden):
        model, _ = golden
        spec = _spec()
        backend = CircuitBackend(array_rows=64, array_cols=64)
        assert backend.estimator.array_rows == 64
        assert backend.estimator.array_cols == 64
        programmed = backend.program(model, _chip(spec), spec=spec)
        assert programmed.cost((2, 1, 28, 28)).energy_pj > 0

    def test_bad_batch_shape_rejected(self, golden):
        model, _ = golden
        spec = _spec()
        programmed = FakeQuantBackend().program(model, _chip(spec), spec=spec)
        with pytest.raises(ValueError, match="batch_shape"):
            programmed.cost((4,))
