"""Synthetic datasets and the Monte Carlo robustness evaluator."""

import numpy as np
import pytest

from repro import nn
from repro.datasets import (
    ArrayDataset,
    batch_iterator,
    batch_source,
    make_pattern_dataset,
    synthetic_cifar10,
    synthetic_cifar100,
    synthetic_mnist,
)
from repro.eval import AverageMeter, evaluate_clean, evaluate_robustness, top1_accuracy
from repro.quant import QConfig, calibrate_model, convert_to_quantized
from repro.variability import VariabilitySpec, WeightProportionalVariance


class TestSyntheticGeneration:
    def test_shapes_and_classes(self):
        train, test = synthetic_mnist(4, 2)
        assert train.images.shape == (40, 1, 28, 28)
        assert test.images.shape == (20, 1, 28, 28)
        train, _ = synthetic_cifar10(4, 2)
        assert train.sample_shape == (3, 32, 32)
        train, _ = synthetic_cifar100(2, 1)
        assert train.num_classes == 100
        assert len(train) == 200

    def test_deterministic(self):
        a = make_pattern_dataset(3, 5, (1, 8, 8), seed=11)
        b = make_pattern_dataset(3, 5, (1, 8, 8), seed=11)
        assert np.array_equal(a.images, b.images)
        assert np.array_equal(a.labels, b.labels)

    def test_seed_changes_data(self):
        a = make_pattern_dataset(3, 5, (1, 8, 8), seed=1)
        b = make_pattern_dataset(3, 5, (1, 8, 8), seed=2)
        assert not np.allclose(a.images, b.images)

    def test_interleaved_labels_balanced_prefix(self):
        data = make_pattern_dataset(4, 10, (1, 8, 8), seed=0)
        prefix = data.subset(8)
        counts = np.bincount(prefix.labels, minlength=4)
        assert np.all(counts == 2)

    def test_normalized(self):
        data = make_pattern_dataset(5, 20, (3, 16, 16), seed=3)
        assert abs(data.images.mean()) < 1e-10
        assert data.images.std() == pytest.approx(1.0)

    def test_classes_are_separable(self):
        # Nearest-template classification must beat chance by a wide margin,
        # otherwise the task carries no trainable signal.
        data = make_pattern_dataset(5, 30, (1, 12, 12), seed=4, max_shift=0, noise=0.3)
        templates = np.stack(
            [data.images[data.labels == c].mean(axis=0) for c in range(5)]
        )
        flat = data.images.reshape(len(data), -1)
        temp_flat = templates.reshape(5, -1)
        predicted = np.argmax(flat @ temp_flat.T, axis=1)
        assert (predicted == data.labels).mean() > 0.9

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 2, 2)), np.zeros(2, dtype=int), 2)


class TestLoaders:
    def test_batch_iterator_covers_all(self):
        data = make_pattern_dataset(2, 10, (1, 4, 4), seed=0)
        seen = 0
        for x, y in batch_iterator(data, 8, shuffle=False):
            assert len(x) == len(y)
            seen += len(x)
        assert seen == len(data)

    def test_drop_last(self):
        data = make_pattern_dataset(2, 10, (1, 4, 4), seed=0)
        sizes = [len(x) for x, _ in batch_iterator(data, 8, drop_last=True)]
        assert all(s == 8 for s in sizes)

    def test_shuffle_uses_rng(self):
        data = make_pattern_dataset(2, 20, (1, 4, 4), seed=0)
        rng = np.random.default_rng(0)
        first = next(batch_iterator(data, 8, rng=rng))[1]
        rng = np.random.default_rng(0)
        again = next(batch_iterator(data, 8, rng=rng))[1]
        assert np.array_equal(first, again)

    def test_batch_source_epochs_differ_but_reproduce(self):
        data = make_pattern_dataset(2, 20, (1, 4, 4), seed=0)
        source = batch_source(data, 8, seed=1)
        epoch1 = next(source())[0]
        epoch2 = next(source())[0]
        assert not np.array_equal(epoch1, epoch2)
        source_b = batch_source(data, 8, seed=1)
        assert np.array_equal(epoch1, next(source_b())[0])


class TestMetrics:
    def test_top1(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert top1_accuracy(logits, np.array([0, 0])) == 0.5

    def test_average_meter(self):
        meter = AverageMeter()
        meter.update(1.0, weight=3)
        meter.update(0.0, weight=1)
        assert meter.mean == pytest.approx(0.75)
        assert AverageMeter().mean == 0.0


def calibrated_model(dataset):
    model = nn.Sequential(nn.Flatten(), nn.Linear(np.prod(dataset.sample_shape), 5))
    convert_to_quantized(model, QConfig(activation_bits=8, weight_bits=4))
    calibrate_model(model, [(dataset.images[:16], None)])
    return model


class TestRobustnessEvaluation:
    def test_null_spec_equals_clean(self, tiny_dataset):
        model = calibrated_model(tiny_dataset)
        clean = evaluate_clean(model, tiny_dataset)
        result = evaluate_robustness(model, tiny_dataset, VariabilitySpec.null(), num_chips=3)
        assert all(acc == pytest.approx(clean) for acc in result.accuracies)

    def test_reproducible_by_seed(self, tiny_dataset):
        model = calibrated_model(tiny_dataset)
        spec = VariabilitySpec.mixed(0.3, WeightProportionalVariance())
        a = evaluate_robustness(model, tiny_dataset, spec, num_chips=4, seed=9)
        b = evaluate_robustness(model, tiny_dataset, spec, num_chips=4, seed=9)
        assert a.accuracies == b.accuracies

    def test_variation_removed_afterwards(self, tiny_dataset):
        from repro.quant import quantized_layers

        model = calibrated_model(tiny_dataset)
        spec = VariabilitySpec.mixed(0.3, WeightProportionalVariance())
        evaluate_robustness(model, tiny_dataset, spec, num_chips=2)
        assert all(not layer.has_variation for _, layer in quantized_layers(model))

    def test_result_statistics(self):
        from repro.eval.robustness import RobustnessResult

        result = RobustnessResult([0.5, 0.7, 0.9])
        assert result.mean == pytest.approx(0.7)
        assert result.worst == pytest.approx(0.5)
        assert result.std > 0
        assert "chips=3" in repr(result)

    def test_higher_sigma_degrades_more(self, tiny_dataset):
        # Train briefly so accuracy has somewhere to fall from.
        from repro.datasets import batch_source
        from repro.training.baselines import train_qat

        model = nn.Sequential(nn.Flatten(), nn.Linear(np.prod(tiny_dataset.sample_shape), 5))
        train_qat(model, batch_source(tiny_dataset, 20, seed=0), QConfig(), epochs=10, float_pretrain_epochs=5)
        spec_lo = VariabilitySpec.within_only(0.1, WeightProportionalVariance())
        spec_hi = VariabilitySpec.within_only(0.8, WeightProportionalVariance())
        lo = evaluate_robustness(model, tiny_dataset, spec_lo, num_chips=8).mean
        hi = evaluate_robustness(model, tiny_dataset, spec_hi, num_chips=8).mean
        assert hi <= lo
