"""Tests for the fleet scheduling policies."""

import pytest

from repro.serve.engine import FleetChip
from repro.serve.scheduler import (
    POLICIES,
    AccuracyWeightedPolicy,
    DriftAwarePolicy,
    EnergyAwarePolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    make_policy,
)
from repro.variability.sampler import ChipVariation


def _fleet(count=4, qualities=None):
    chips = [
        FleetChip(i, f"chip{i:02d}", ChipVariation(0.0, 0.0, seed=i))
        for i in range(count)
    ]
    if qualities is not None:
        for chip, quality in zip(chips, qualities):
            chip.quality = quality
    return chips


def _serve(policy, chips, batches, batch_size=8):
    """Dispatch ``batches`` equal batches, mirroring the engine's accounting."""
    trace = []
    for _ in range(batches):
        chip = policy.choose(None, chips)
        chip.served_samples += batch_size
        chip.served_batches += 1
        trace.append(chip.chip_id)
    return trace


class TestRegistry:
    def test_registry_names(self):
        assert set(POLICIES) == {
            "round-robin", "least-loaded", "accuracy-weighted", "drift-aware",
            "energy-aware", "latency-aware",
        }

    def test_make_policy(self):
        assert isinstance(make_policy("round-robin"), RoundRobinPolicy)
        assert isinstance(make_policy("least-loaded"), LeastLoadedPolicy)
        assert isinstance(make_policy("accuracy-weighted"), AccuracyWeightedPolicy)
        assert isinstance(make_policy("drift-aware"), DriftAwarePolicy)
        assert isinstance(make_policy("energy-aware"), EnergyAwarePolicy)

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            make_policy("fortune-teller")


class TestRoundRobin:
    def test_cycles_in_index_order(self):
        chips = _fleet(3)
        trace = _serve(RoundRobinPolicy(), chips, 7)
        assert trace == ["chip00", "chip01", "chip02"] * 2 + ["chip00"]

    def test_reset_restarts_cycle(self):
        policy, chips = RoundRobinPolicy(), _fleet(3)
        policy.choose(None, chips)
        policy.reset()
        assert policy.choose(None, chips).chip_id == "chip00"


class TestLeastLoaded:
    def test_balances_served_samples(self):
        chips = _fleet(4)
        _serve(LeastLoadedPolicy(), chips, 12)
        assert {chip.served_samples for chip in chips} == {24}

    def test_prefers_lagging_chip(self):
        chips = _fleet(3)
        chips[0].served_samples = 100
        chips[2].served_samples = 100
        assert LeastLoadedPolicy().choose(None, chips).chip_id == "chip01"

    def test_tie_breaks_by_index(self):
        assert LeastLoadedPolicy().choose(None, _fleet(3)).chip_id == "chip00"


class TestAccuracyWeighted:
    def test_traffic_proportional_to_quality(self):
        chips = _fleet(2, qualities=[0.9, 0.3])
        _serve(AccuracyWeightedPolicy(), chips, 40, batch_size=1)
        ratio = chips[0].served_samples / chips[1].served_samples
        assert 2.0 <= ratio <= 4.0  # ~3x quality => ~3x traffic

    def test_no_chip_starves(self):
        chips = _fleet(3, qualities=[0.99, 0.5, 0.01])
        _serve(AccuracyWeightedPolicy(), chips, 200, batch_size=1)
        assert all(chip.served_samples > 0 for chip in chips)

    def test_unprobed_fleet_degrades_to_balance(self):
        chips = _fleet(4)  # quality=None on every chip
        _serve(AccuracyWeightedPolicy(), chips, 16, batch_size=1)
        assert {chip.served_samples for chip in chips} == {4}

    def test_deterministic_trace(self):
        first = _serve(AccuracyWeightedPolicy(), _fleet(3, [0.7, 0.5, 0.6]), 20)
        second = _serve(AccuracyWeightedPolicy(), _fleet(3, [0.7, 0.5, 0.6]), 20)
        assert first == second

    def test_zero_quality_uses_floor(self):
        chips = _fleet(2, qualities=[0.0, 0.0])
        trace = _serve(AccuracyWeightedPolicy(), chips, 4, batch_size=1)
        assert trace == ["chip00", "chip01", "chip00", "chip01"]


class TestDriftAware:
    def test_degraded_chip_gets_no_traffic(self):
        """Greedy accuracy-first: a measurably worse chip is starved."""
        chips = _fleet(3, qualities=[0.95, 0.6, 0.94])
        _serve(DriftAwarePolicy(), chips, 30, batch_size=1)
        assert chips[1].served_samples == 0
        assert chips[0].served_samples > 0 and chips[2].served_samples > 0

    def test_near_equal_chips_balance_least_loaded(self):
        chips = _fleet(4)  # quality=None on every chip => all weight 1.0
        _serve(DriftAwarePolicy(), chips, 16, batch_size=1)
        assert {chip.served_samples for chip in chips} == {4}

    def test_tie_margin_groups_close_qualities(self):
        chips = _fleet(2, qualities=[0.900, 0.895])  # inside the 0.01 margin
        _serve(DriftAwarePolicy(), chips, 10, batch_size=1)
        assert chips[0].served_samples == chips[1].served_samples == 5

    def test_age_discounts_stale_quality(self):
        chips = _fleet(2, qualities=[0.9, 0.7])
        chips[0].age = 50.0  # great quality signal, but measured long ago
        _serve(DriftAwarePolicy(age_discount=0.5), chips, 40, batch_size=1)
        assert chips[0].served_samples == 0
        assert chips[1].served_samples == 40

    def test_recalibrated_chip_regains_traffic(self):
        chips = _fleet(2, qualities=[0.8, 0.8])
        chips[0].age = 30.0
        policy = DriftAwarePolicy(age_discount=0.5)
        _serve(policy, chips, 20, batch_size=1)
        assert chips[0].served_samples == 0  # stale: starved
        chips[0].age = 0.0  # lifecycle recalibrated it
        _serve(policy, chips, 20, batch_size=1)
        assert chips[0].served_samples == 20  # catches back up to its peer

    def test_quality_recovery_restores_traffic(self):
        chips = _fleet(2, qualities=[0.5, 0.9])
        policy = DriftAwarePolicy()
        _serve(policy, chips, 10, batch_size=1)
        assert chips[0].served_samples == 0
        chips[0].quality = 0.9  # recalibration probe restored it
        _serve(policy, chips, 10, batch_size=1)
        assert chips[0].served_samples == 10

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            DriftAwarePolicy(age_discount=-0.1)
        with pytest.raises(ValueError):
            DriftAwarePolicy(tie_margin=-0.01)

    def test_deterministic_trace(self):
        def run():
            chips = _fleet(3, qualities=[0.7, 0.5, 0.6])
            chips[1].age = 5.0
            return _serve(DriftAwarePolicy(), chips, 20)

        assert run() == run()


class TestEnergyAware:
    def _serve_with_energy(self, policy, chips, batches, cost_per_batch):
        """Dispatch batches, accruing each chip's per-batch energy cost."""
        trace = []
        for _ in range(batches):
            chip = policy.choose(None, chips)
            chip.served_samples += 8
            chip.served_batches += 1
            chip.energy_uj += cost_per_batch[chip.index]
            trace.append(chip.chip_id)
        return trace

    def test_cheapest_adequate_chip_wins(self):
        """Equal quality, unequal cost: traffic drains to the cheap chip."""
        chips = _fleet(2, qualities=[0.9, 0.9])
        self._serve_with_energy(EnergyAwarePolicy(), chips, 24, [3.0, 1.0])
        # chip01 serves ~3 batches for each of chip00's (cost ratio 3:1).
        assert chips[1].served_batches >= 2.5 * chips[0].served_batches

    def test_quality_still_gates_dispatch(self):
        """A measurably degraded chip gets no traffic however cheap it is."""
        chips = _fleet(2, qualities=[0.9, 0.5])
        self._serve_with_energy(EnergyAwarePolicy(), chips, 10, [5.0, 0.1])
        assert chips[1].served_samples == 0

    def test_costless_backend_degrades_to_least_loaded(self):
        """Zero accumulated energy everywhere => balance like least-loaded."""
        chips = _fleet(4)
        self._serve_with_energy(EnergyAwarePolicy(), chips, 16, [0.0] * 4)
        assert {chip.served_samples for chip in chips} == {32}

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            EnergyAwarePolicy(tie_margin=-0.01)

    def test_deterministic_trace(self):
        def run():
            chips = _fleet(3, qualities=[0.9, 0.9, 0.9])
            return self._serve_with_energy(
                EnergyAwarePolicy(), chips, 20, [2.0, 1.0, 3.0]
            )

        assert run() == run()
