"""Tests for conv deployment and whole-model chip inference."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.models import build_model
from repro.pim import ADC, MappedConv2d, PimChip, deploy_model
from repro.quant import QConfig, QuantConv2d, calibrate_model, convert_to_quantized
from repro.variability.models import WeightProportionalVariance
from repro.variability.sampler import VariabilitySpec


@pytest.fixture
def qconv():
    rng = np.random.default_rng(0)
    layer = QuantConv2d(2, 3, kernel_size=3, qconfig=QConfig.from_notation("A8W4"), padding=1)
    calibrate_model(layer, [rng.normal(size=(2, 2, 8, 8))])
    return layer


@pytest.fixture
def calibrated_lenet():
    rng = np.random.default_rng(1)
    model = convert_to_quantized(build_model("lenet5-mini"), QConfig.from_notation("A8W4"))
    data = rng.normal(size=(4, 1, 28, 28))
    calibrate_model(model, [data])
    return model, data


class TestMappedConv2d:
    def test_matches_fake_quant_with_ideal_adc(self, qconv):
        rng = np.random.default_rng(2)
        chip = PimChip(VariabilitySpec.null(), array_rows=8, array_cols=8)
        mapped = chip.deploy_conv2d(qconv, "conv")
        x = rng.normal(size=(2, 2, 8, 8))
        with no_grad():
            reference = qconv(Tensor(x)).data
        assert np.allclose(mapped.forward(x), reference, atol=1e-12)

    def test_output_shape_respects_stride(self):
        rng = np.random.default_rng(3)
        layer = QuantConv2d(1, 2, kernel_size=3, qconfig=QConfig(), stride=2)
        calibrate_model(layer, [rng.normal(size=(1, 1, 9, 9))])
        chip = PimChip(VariabilitySpec.null(), array_rows=16, array_cols=16)
        mapped = chip.deploy_conv2d(layer, "strided")
        out = mapped.forward(rng.normal(size=(1, 1, 9, 9)))
        assert out.shape == (1, 2, 4, 4)

    def test_tiling_splits_large_kernels(self, qconv):
        # mvm input dim = 2*3*3 = 18 > 8 rows -> multiple row tiles.
        chip = PimChip(VariabilitySpec.null(), array_rows=8, array_cols=8)
        mapped = chip.deploy_conv2d(qconv, "tiled")
        assert mapped.array_count > 1

    def test_variation_matches_fake_quant_path(self, qconv):
        """Same chip variation -> identical outputs on both fidelities."""
        rng = np.random.default_rng(4)
        spec = VariabilitySpec(0.1, 0.1, WeightProportionalVariance())
        chip = PimChip(spec, array_rows=64, array_cols=64, seed=5)
        mapped = chip.deploy_conv2d(qconv, "varied")
        x = rng.normal(size=(2, 2, 8, 8))

        # Install the SAME per-tile epsilons on the fake-quant layer: the
        # chip applies variation per tile key, so the cross-check uses a
        # single-tile deployment (64 rows/cols hold the whole 18x3 matrix).
        assert mapped.array_count == 1
        eps = chip.variation.epsilon_for("varied:tile0", (18, 3))
        qconv.set_variation(
            eps.T.reshape(qconv.weight.data.shape), spec.variance_model, "naive"
        )
        with no_grad():
            reference = qconv(Tensor(x)).data
        qconv.set_variation(None, None, "naive")
        assert np.allclose(mapped.forward(x), reference, atol=1e-9)

    def test_per_channel_deployment_rejected(self):
        rng = np.random.default_rng(5)
        layer = QuantConv2d(
            1, 2, kernel_size=3, qconfig=QConfig(per_channel_weights=True)
        )
        calibrate_model(layer, [rng.normal(size=(1, 1, 8, 8))])
        chip = PimChip(VariabilitySpec.null())
        with pytest.raises(NotImplementedError):
            chip.deploy_conv2d(layer, "pc")


class TestDeployModel:
    def test_whole_model_matches_fake_quant(self, calibrated_lenet):
        model, data = calibrated_lenet
        with no_grad():
            reference = model(Tensor(data)).data
        chip = PimChip(VariabilitySpec.null(), array_rows=64, array_cols=64)
        deployed = deploy_model(model, chip)
        assert len(deployed) == 5  # 2 convs + 3 linears
        with no_grad():
            chip_out = model(Tensor(data)).data
        assert np.allclose(chip_out, reference, atol=1e-12)

    def test_quantized_adc_degrades_gracefully(self, calibrated_lenet):
        model, data = calibrated_lenet
        with no_grad():
            reference = model(Tensor(data)).data
        chip = PimChip(
            VariabilitySpec.null(),
            array_rows=64,
            array_cols=64,
            adc=ADC(bits=10, full_scale=200.0),
        )
        deploy_model(model, chip)
        with no_grad():
            coarse = model(Tensor(data)).data
        # Not exact, but predictions mostly agree.
        agreement = (coarse.argmax(-1) == reference.argmax(-1)).mean()
        assert agreement >= 0.5

    def test_deployed_model_still_traversable(self, calibrated_lenet):
        model, _ = calibrated_lenet
        chip = PimChip(VariabilitySpec.null(), array_rows=64, array_cols=64)
        deploy_model(model, chip)
        model.eval()  # mode propagation must not crash on adapters
        assert sum(1 for _ in model.modules()) > 1

    def test_array_budget_accounting(self, calibrated_lenet):
        model, _ = calibrated_lenet
        chip = PimChip(VariabilitySpec.null(), array_rows=32, array_cols=32)
        deploy_model(model, chip)
        assert chip.total_arrays == sum(
            layer.array_count for layer in chip.layers.values()
        )
        assert chip.total_arrays > 5  # tiling forced multiple arrays
