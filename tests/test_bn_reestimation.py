"""Tests for BatchNorm running-statistic re-estimation after noisy training."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.nn import BatchNorm2d, Conv2d, ReLU, Sequential, reestimate_bn_statistics


def _bn_model():
    return Sequential(Conv2d(2, 4, 3, padding=1), BatchNorm2d(4), ReLU())


def _batches(rng, count=4):
    data = [(rng.normal(size=(8, 2, 6, 6)), np.zeros(8, dtype=int)) for _ in range(count)]

    def source():
        return iter(data)

    return source


class TestResetRunningStats:
    def test_reset_restores_defaults(self):
        bn = BatchNorm2d(4)
        bn.set_buffer("running_mean", np.full(4, 3.0))
        bn.set_buffer("running_var", np.full(4, 9.0))
        bn.reset_running_stats()
        assert np.all(bn.running_mean == 0.0)
        assert np.all(bn.running_var == 1.0)


class TestReestimation:
    def test_returns_bn_count(self):
        rng = np.random.default_rng(0)
        model = _bn_model()
        assert reestimate_bn_statistics(model, _batches(rng)) == 1

    def test_no_bn_layers_is_noop(self):
        rng = np.random.default_rng(0)
        model = Sequential(Conv2d(2, 4, 3))
        assert reestimate_bn_statistics(model, _batches(rng)) == 0

    def test_statistics_match_data(self):
        """Re-estimated stats equal the plain mean of per-batch statistics."""
        rng = np.random.default_rng(1)
        model = Sequential(BatchNorm2d(2))
        batches = [(5.0 + 2.0 * rng.normal(size=(16, 2, 4, 4)), None) for _ in range(6)]

        def source():
            return iter(batches)

        reestimate_bn_statistics(model, source)
        bn = model._modules["0"]
        expected_mean = np.mean([b[0].mean(axis=(0, 2, 3)) for b in batches], axis=0)
        assert np.allclose(bn.running_mean, expected_mean, atol=1e-9)
        assert np.allclose(bn.running_var, 4.0, rtol=0.3)

    def test_momentum_restored(self):
        rng = np.random.default_rng(2)
        model = _bn_model()
        bn = model._modules["1"]
        original = bn.momentum
        reestimate_bn_statistics(model, _batches(rng), passes=2)
        assert bn.momentum == original

    def test_training_mode_restored(self):
        rng = np.random.default_rng(3)
        model = _bn_model().eval()
        reestimate_bn_statistics(model, _batches(rng))
        assert model.training is False

    def test_parameters_untouched(self):
        rng = np.random.default_rng(4)
        model = _bn_model()
        before = {n: p.data.copy() for n, p in model.named_parameters()}
        reestimate_bn_statistics(model, _batches(rng))
        for name, parameter in model.named_parameters():
            assert np.array_equal(parameter.data, before[name])

    def test_recovers_from_corrupted_stats(self):
        """The motivating scenario: corrupted running stats destroy eval
        outputs; re-estimation restores them."""
        rng = np.random.default_rng(5)
        model = _bn_model()
        batches = _batches(rng)
        reestimate_bn_statistics(model, batches)
        x = rng.normal(size=(4, 2, 6, 6))
        model.eval()
        with no_grad():
            reference = model(Tensor(x)).data
        bn = model._modules["1"]
        bn.set_buffer("running_mean", np.full(4, 100.0))
        bn.set_buffer("running_var", np.full(4, 1e4))
        with no_grad():
            corrupted = model(Tensor(x)).data
        assert not np.allclose(corrupted, reference, atol=1e-3)
        reestimate_bn_statistics(model, batches)
        model.eval()
        with no_grad():
            recovered = model(Tensor(x)).data
        assert np.allclose(recovered, reference, atol=1e-9)
