"""Tests for the plain-text table renderer used by the benchmark harness."""

from repro.experiments.tables import format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "value"], [["a", 1.5], ["longer", 20.25]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        # All rows same width structure: columns separated by 2 spaces.
        assert "a" in lines[2] and "1.50" in lines[2]
        assert "longer" in lines[3] and "20.25" in lines[3]

    def test_title_prepended(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["v"], [[0.123456]])
        assert "0.12" in text
        assert "0.1234" not in text

    def test_non_float_cells_passthrough(self):
        text = format_table(["v"], [["-"], [3]])
        assert "-" in text and "3" in text


class TestFormatSeries:
    def test_one_row_per_x(self):
        text = format_series("sigma", [0.1, 0.5], {"qavat": [90.0, 70.0], "qat": [88.0, 30.0]})
        lines = text.splitlines()
        assert len(lines) == 4  # header + rule + 2 rows
        assert lines[0].split()[:3] == ["sigma", "qavat", "qat"]
        assert "70.00" in lines[3]

    def test_column_order_follows_dict(self):
        text = format_series("x", [1], {"b": [2.0], "a": [3.0]})
        header = text.splitlines()[0].split()
        assert header == ["x", "b", "a"]
