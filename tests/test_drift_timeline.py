"""Integration test: self-tuning along a drift timeline (footnote 2)."""

import numpy as np
import pytest

from repro.datasets import batch_source, synthetic_mnist
from repro.models import build_model
from repro.nn import init
from repro.pim.drift import AgingDrift, DriftingChip
from repro.quant import QConfig
from repro.selftuning import (
    DriftCompensator,
    SelfTuningConfig,
    attach_self_tuning,
    run_drift_timeline,
)
from repro.training import train_qavat
from repro.variability import VariabilitySpec, WeightProportionalVariance
from repro.variability.sampler import VariabilitySampler


@pytest.fixture(scope="module")
def trained_model():
    train, test = synthetic_mnist(train_per_class=24, test_per_class=8)
    init.seed(5)
    model = build_model("lenet5-mini")
    spec = VariabilitySpec.within_only(0.2, WeightProportionalVariance())
    train_qavat(
        model,
        batch_source(train, 32, seed=0),
        QConfig.from_notation("A4W2"),
        spec,
        epochs=8,
        lr=0.02,
        float_pretrain_epochs=5,
    )
    return model, test, spec


@pytest.mark.slow
class TestDriftTimeline:
    def _chip(self, spec, nu=0.15, seed=0):
        base = VariabilitySampler(spec, seed=seed).sample_chip()
        return DriftingChip(base, AgingDrift(nu=nu), seed=seed)

    def test_timeline_structure(self, trained_model):
        model, test, spec = trained_model
        attach_self_tuning(model, SelfTuningConfig(kind="global", gtm_cells=10_000))
        chip = self._chip(spec)
        times = np.array([0.0, 10.0, 50.0])
        timeline = run_drift_timeline(
            model, test, chip, spec, times, DriftCompensator(policy="every")
        )
        assert [t for t, _, _ in timeline] == [0.0, 10.0, 50.0]
        eps_values = [eps for _, eps, _ in timeline]
        assert eps_values[0] > eps_values[-1]  # aging decays eps monotonically
        assert all(0.0 <= acc <= 1.0 for _, _, acc in timeline)

    def test_refreshed_beats_stale_under_strong_aging(self, trained_model):
        model, test, spec = trained_model
        attach_self_tuning(model, SelfTuningConfig(kind="global", gtm_cells=100_000))
        times = np.linspace(0.0, 200.0, 6)

        def mean_accuracy(policy):
            accuracies = []
            for seed in range(3):
                chip = self._chip(spec, nu=0.2, seed=seed)
                timeline = run_drift_timeline(
                    model, test, chip, spec, times, DriftCompensator(policy=policy)
                )
                accuracies.append(np.mean([acc for _, _, acc in timeline]))
            return float(np.mean(accuracies))

        fresh = mean_accuracy("every")
        stale = mean_accuracy("never")
        # Aging at nu=0.2 drifts eps_B to ~-1.06 by t=200; a deployment-time
        # GTM measurement goes badly stale, per-inference refresh tracks it.
        assert fresh > stale + 0.05
