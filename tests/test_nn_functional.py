"""Losses and functional helpers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.grad_check import numerical_gradient
from repro.nn import functional as F


class TestCrossEntropy:
    def test_matches_manual(self, rng):
        logits = rng.normal(size=(6, 4))
        targets = rng.integers(0, 4, size=6)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(6), targets].mean()
        loss = F.cross_entropy(Tensor(logits, requires_grad=True), targets)
        assert float(loss.data) == pytest.approx(expected)

    def test_gradient(self, rng):
        logits = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        targets = rng.integers(0, 5, size=4)

        def f(logits):
            return F.cross_entropy(logits, targets)

        f(logits).backward()
        num = numerical_gradient(f, [logits], 0)
        assert np.allclose(logits.grad, num, atol=1e-6)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -20.0)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        loss = F.cross_entropy(Tensor(logits, requires_grad=True), np.array([1, 2]))
        assert float(loss.data) < 1e-8

    def test_stable_for_large_logits(self):
        logits = Tensor(np.array([[1e4, -1e4]]), requires_grad=True)
        loss = F.cross_entropy(logits, np.array([0]))
        assert np.isfinite(float(loss.data))


class TestSoftmax:
    def test_normalizes(self, rng):
        probs = F.softmax(Tensor(rng.normal(size=(3, 6)))).data
        assert np.allclose(probs.sum(axis=-1), 1.0)
        assert np.all(probs >= 0)


class TestMseLoss:
    def test_value(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([0.0, 0.0])
        assert float(F.mse_loss(a, b).data) == pytest.approx(2.5)


class TestAccuracyHelpers:
    def test_accuracy(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.6, 0.4]])
        assert F.accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_accepts_tensor(self):
        logits = Tensor(np.array([[1.0, 0.0]]))
        assert F.accuracy(logits, np.array([0])) == 1.0

    def test_one_hot(self):
        out = F.one_hot(np.array([0, 2]), 3)
        assert np.array_equal(out, [[1, 0, 0], [0, 0, 1]])
