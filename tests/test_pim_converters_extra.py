"""Tests for ADC non-idealities (offset, gain, noise, ENOB)."""

import numpy as np
import pytest

from repro.pim.converters import ADC


class TestAdcDistortion:
    def test_default_is_clean(self):
        adc = ADC(ideal=True)
        x = np.linspace(-1, 1, 11)
        assert np.array_equal(adc.convert(x), x)

    def test_offset_shifts_readings(self):
        adc = ADC(ideal=True, offset_error=0.01, full_scale=2.0)
        out = adc.convert(np.zeros(5))
        assert np.allclose(out, 0.02)

    def test_gain_scales_readings(self):
        adc = ADC(ideal=True, gain_error=0.05)
        out = adc.convert(np.array([1.0, -1.0]))
        assert np.allclose(out, [1.05, -1.05])

    def test_noise_statistics(self):
        adc = ADC(ideal=True, noise_rms=0.01, full_scale=2.0, noise_seed=0)
        out = adc.convert(np.zeros(100_000))
        assert abs(out.mean()) < 1e-3
        assert out.std() == pytest.approx(0.02, rel=0.05)

    def test_noise_fresh_per_conversion(self):
        adc = ADC(ideal=True, noise_rms=0.01)
        first = adc.convert(np.zeros(10))
        second = adc.convert(np.zeros(10))
        assert not np.array_equal(first, second)

    def test_quantization_applies_after_distortion(self):
        adc = ADC(bits=4, full_scale=1.0, offset_error=0.5)
        out = adc.convert(np.array([0.0]))
        # 0 + 0.5 offset -> quantized onto the 4-bit grid.
        assert out[0] == pytest.approx(0.5, abs=adc.lsb)

    def test_saturation(self):
        adc = ADC(bits=8, full_scale=1.0)
        assert adc.convert(np.array([10.0]))[0] == pytest.approx(1.0)
        assert adc.convert(np.array([-10.0]))[0] == pytest.approx(-1.0)


class TestEnob:
    def test_noise_free_is_nominal(self):
        assert ADC(bits=10).effective_resolution_bits() == 10.0

    def test_noise_reduces_resolution(self):
        noisy = ADC(bits=10, noise_rms=0.01)
        assert noisy.effective_resolution_bits() < 10.0

    def test_more_noise_fewer_bits(self):
        a = ADC(bits=12, noise_rms=0.001).effective_resolution_bits()
        b = ADC(bits=12, noise_rms=0.01).effective_resolution_bits()
        assert b < a
