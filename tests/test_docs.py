"""Docs stay true: docstring coverage, link integrity, runnable quickstart.

Three guards that keep the documentation from rotting:

1. every name exported from ``repro.serve`` (and every public method on
   the serving surface a user actually touches) carries a real
   docstring;
2. every relative markdown link in ``docs/`` and the README points at a
   file that exists;
3. the README "Serve a request" quickstart actually runs — extracted
   from the README itself and executed, so the first code a reader sees
   can never silently break.
"""

import inspect
import re
from pathlib import Path

import pytest

import repro.serve as serve
from repro.serve import (
    FleetSpec,
    Gateway,
    GatewayConfig,
    InferenceEngine,
    MicroBatcher,
    SchedulingPolicy,
    ServeConfig,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
DOCS = sorted((REPO_ROOT / "docs").glob("*.md"))
README = REPO_ROOT / "README.md"

#: The classes a serving user touches directly; their public methods and
#: properties must each explain themselves.
SURFACE = [
    ServeConfig,
    InferenceEngine,
    FleetSpec,
    MicroBatcher,
    SchedulingPolicy,
    Gateway,
    GatewayConfig,
]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)]+)\)")


def _has_doc(obj) -> bool:
    doc = inspect.getdoc(obj)
    return bool(doc and doc.strip())


class TestDocstrings:
    def test_serve_module_docstring(self):
        assert _has_doc(serve)

    @pytest.mark.parametrize("name", sorted(serve.__all__))
    def test_every_export_documented(self, name):
        obj = getattr(serve, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            return  # registries/constants (POLICIES, TRACES, ...) carry no __doc__
        assert _has_doc(obj), f"repro.serve.{name} has no docstring"

    @pytest.mark.parametrize("cls", SURFACE, ids=lambda cls: cls.__name__)
    def test_public_surface_methods_documented(self, cls):
        assert _has_doc(cls), f"{cls.__name__} has no class docstring"
        undocumented = []
        for name, member in inspect.getmembers(cls):
            if name.startswith("_"):
                continue
            if isinstance(inspect.getattr_static(cls, name, None), property):
                target = inspect.getattr_static(cls, name).fget
            elif callable(member):
                target = member
            else:
                continue  # dataclass fields etc. are documented in the class doc
            if not _has_doc(target):
                undocumented.append(name)
        assert not undocumented, f"{cls.__name__} methods lack docstrings: {undocumented}"


class TestDocsTree:
    def test_docs_index_exists_and_links_every_page(self):
        index = REPO_ROOT / "docs" / "README.md"
        assert index.exists(), "docs/README.md index is missing"
        body = index.read_text()
        for page in ("architecture.md", "serving.md", "fault-tolerance.md",
                     "observability.md"):
            assert page in body, f"docs/README.md does not link {page}"
            assert (REPO_ROOT / "docs" / page).exists(), f"docs/{page} is missing"

    @pytest.mark.parametrize(
        "path", [README, *DOCS], ids=lambda p: str(p.relative_to(REPO_ROOT))
    )
    def test_relative_links_resolve(self, path):
        broken = []
        for target in LINK_RE.findall(path.read_text()):
            target = target.split()[0]  # drop optional '"title"' suffixes
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"{path.name} has broken relative links: {broken}"


class TestQuickstart:
    def _extract(self) -> str:
        body = README.read_text()
        match = re.search(
            r"## Serve a request\s+```python\n(.*?)```", body, re.DOTALL
        )
        assert match, "README has no 'Serve a request' python quickstart block"
        return match.group(1)

    def test_quickstart_is_compact(self):
        code = self._extract()
        statements = [
            line for line in code.splitlines()
            if line.strip() and not line.strip().startswith("#")
        ]
        assert len(statements) <= 40, "quickstart should stay skimmable"

    def test_quickstart_runs(self, capsys):
        code = self._extract()
        exec(compile(code, "<README quickstart>", "exec"), {"__name__": "__quickstart__"})
        out = capsys.readouterr().out
        assert "answered class" in out, f"quickstart printed nothing useful: {out!r}"
