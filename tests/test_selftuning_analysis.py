"""Tests for the self-tuning sizing analysis and drift compensation."""

import numpy as np
import pytest

from repro.pim.drift import AgingDrift, DriftingChip, TemperatureDrift
from repro.selftuning import (
    DriftCompensator,
    GlobalTuningModule,
    LayerTuningModule,
    SelfTuningConfig,
    check_st_matches_variance_model,
    correction_gain_db,
    gtm_cells_for_target,
    gtm_standard_error,
    ltm_columns_for_target,
    ltm_measurement_noise_std,
    residual_epsilon_std,
    size_quality_table,
)
from repro.variability.models import WeightProportionalVariance
from repro.variability.sampler import ChipVariation, VariabilitySampler, VariabilitySpec


class TestGtmAnalysis:
    def test_standard_error_formula(self):
        assert gtm_standard_error(0.3, 900) == pytest.approx(0.01)

    def test_matches_simulated_gtm(self):
        """The closed form predicts the Monte Carlo spread of GTM estimates."""
        sigma_w, cells = 0.4, 250
        gtm = GlobalTuningModule(cells)
        spec = VariabilitySpec(sigma_w, 0.3, WeightProportionalVariance())
        sampler = VariabilitySampler(spec, seed=0)
        errors = []
        for _ in range(3000):
            chip = sampler.sample_chip()
            errors.append(gtm.estimate(chip) - chip.eps_between)
        assert np.std(errors) == pytest.approx(gtm_standard_error(sigma_w, cells), rel=0.1)
        assert abs(np.mean(errors)) < 0.002  # unbiased

    def test_cells_for_target_inverts_standard_error(self):
        cells = gtm_cells_for_target(0.3, 0.01)
        assert gtm_standard_error(0.3, cells) <= 0.01
        assert gtm_standard_error(0.3, cells - 1) > 0.01

    def test_cells_for_target_degenerate(self):
        assert gtm_cells_for_target(0.0, 0.01) == 1
        with pytest.raises(ValueError):
            gtm_cells_for_target(0.3, 0.0)

    def test_residual_independent_of_sigma_between(self):
        assert residual_epsilon_std(0.2, 400) == residual_epsilon_std(0.2, 400)
        assert residual_epsilon_std(0.2, 400) == pytest.approx(0.01)

    def test_gain_grows_with_cells(self):
        gains = [correction_gain_db(0.5, 0.5, n) for n in (10, 100, 1000)]
        assert gains[0] < gains[1] < gains[2]

    def test_gain_edge_cases(self):
        assert correction_gain_db(0.0, 0.5, 100) == 0.0
        assert correction_gain_db(0.5, 0.0, 100) == np.inf

    def test_size_quality_table_shape(self):
        rows = size_quality_table(0.3, 0.3)
        assert len(rows) == 5
        assert rows[0]["standard_error"] > rows[-1]["standard_error"]


class TestLtmAnalysis:
    def test_noise_std_formula(self):
        assert ltm_measurement_noise_std(0.2, 1.5, 10.0, 4) == pytest.approx(
            0.2 * 1.5 * 10.0 / 2.0
        )

    def test_matches_simulated_ltm(self):
        """Closed form vs the simulated LTM column noise."""
        sigma_w, w_max, columns = 0.3, 2.0, 4
        ltm = LayerTuningModule(columns)
        rng = np.random.default_rng(0)
        x = rng.random(64)
        norm = float(np.linalg.norm(x))
        spec = VariabilitySpec(sigma_w, 0.0, WeightProportionalVariance())
        sampler = VariabilitySampler(spec, seed=1)
        errors = []
        for _ in range(2000):
            chip = sampler.sample_chip()
            measured = ltm.measure(chip, "layer", x[None, :], w_max)[0]
            clean = (ltm.w_l(w_max) + chip.eps_between * w_max) * x.sum()
            errors.append(measured - clean)
        expected = ltm_measurement_noise_std(sigma_w, w_max, norm, columns)
        assert np.std(errors) == pytest.approx(expected, rel=0.1)

    def test_columns_for_target(self):
        columns = ltm_columns_for_target(0.3, 1.0, 5.0, target_std=0.5)
        assert ltm_measurement_noise_std(0.3, 1.0, 5.0, columns) <= 0.5

    def test_columns_validation(self):
        with pytest.raises(ValueError):
            ltm_measurement_noise_std(0.1, 1.0, 1.0, 0)
        with pytest.raises(ValueError):
            ltm_columns_for_target(0.1, 1.0, 1.0, 0.0)


class TestWrongStDiagnostic:
    def test_matching_configs(self):
        ok, _ = check_st_matches_variance_model(
            SelfTuningConfig(kind="global"), "weight-proportional"
        )
        assert ok
        ok, _ = check_st_matches_variance_model(
            SelfTuningConfig(kind="layer"), "layer-fixed"
        )
        assert ok

    def test_mismatch_flagged(self):
        ok, message = check_st_matches_variance_model(
            SelfTuningConfig(kind="global"), "layer-fixed"
        )
        assert not ok
        assert "NOT" in message


def _drifting_chip(process, sigma_w=0.1, sigma_b=0.2, seed=0):
    spec = VariabilitySpec(sigma_w, sigma_b, WeightProportionalVariance())
    base = VariabilitySampler(spec, seed=seed).sample_chip()
    return DriftingChip(base, process, seed=seed)


class TestDriftCompensator:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            DriftCompensator(policy="sometimes")
        with pytest.raises(ValueError):
            DriftCompensator(period=0.0)

    def test_never_measures_once(self):
        chip = _drifting_chip(AgingDrift(nu=0.05))
        compensator = DriftCompensator(policy="never")
        for t in (0.0, 1.0, 2.0):
            chip.advance_to(t)
            assert compensator.maybe_remeasure(chip) is False
        assert compensator.remeasure_count == 1  # the deployment measurement

    def test_every_remeasures_each_call(self):
        chip = _drifting_chip(AgingDrift(nu=0.05))
        compensator = DriftCompensator(policy="every")
        for t in (0.0, 1.0, 2.0):
            chip.advance_to(t)
            assert compensator.maybe_remeasure(chip) is True
        assert compensator.remeasure_count == 3

    def test_periodic_respects_period(self):
        chip = _drifting_chip(AgingDrift(nu=0.05))
        compensator = DriftCompensator(policy="periodic", period=2.0)
        results = []
        for t in np.arange(0.0, 5.5, 0.5):
            chip.advance_to(float(t))
            results.append(compensator.maybe_remeasure(chip))
        # Measured at t = 0, 2, 4 only.
        assert sum(results) == 3

    def test_staleness_tracking(self):
        chip = _drifting_chip(AgingDrift(nu=0.05))
        compensator = DriftCompensator(policy="periodic", period=10.0)
        assert compensator.staleness(chip) == np.inf
        chip.advance_to(0.0)
        compensator.maybe_remeasure(chip)
        chip.advance_to(3.0)
        compensator.maybe_remeasure(chip)  # within period: no refresh
        assert compensator.staleness(chip) == pytest.approx(3.0)

    def test_fresh_gtm_tracks_drift(self):
        """With per-inference re-measurement the GTM follows the drifted
        eps_B; with policy='never' it keeps the deployment-time value."""
        gtm = GlobalTuningModule(100_000)
        process = TemperatureDrift(theta=0.1, sigma=0.4)

        chip_fresh = _drifting_chip(process, seed=3)
        fresh = DriftCompensator(policy="every")
        chip_fresh.advance_to(0.0)
        fresh.maybe_remeasure(chip_fresh)
        deployment_estimate = gtm.estimate(chip_fresh)
        chip_fresh.advance_to(50.0)
        fresh.maybe_remeasure(chip_fresh)
        assert gtm.estimate(chip_fresh) == pytest.approx(
            chip_fresh.eps_between, abs=0.01
        )

        chip_stale = _drifting_chip(TemperatureDrift(theta=0.1, sigma=0.4), seed=3)
        stale = DriftCompensator(policy="never")
        chip_stale.advance_to(0.0)
        stale.maybe_remeasure(chip_stale)
        first = gtm.estimate(chip_stale)
        chip_stale.advance_to(50.0)
        stale.maybe_remeasure(chip_stale)
        assert gtm.estimate(chip_stale) == first  # stale cache
        assert abs(first - chip_stale.eps_between) > 0.01  # and it drifted
