"""Tests for the dynamic micro-batcher."""

import numpy as np
import pytest

from repro.serve.batcher import Batch, MicroBatcher, Request


def _request(rid, arrival=0, value=0.0):
    return Request(str(rid), np.full((3,), float(value)), arrival=arrival)


class TestRelease:
    def test_full_batch_released_immediately(self):
        batcher = MicroBatcher(max_batch=4, max_wait=10)
        for i in range(4):
            batcher.submit(_request(i))
        batches = batcher.poll(now=0)
        assert len(batches) == 1
        assert batches[0].size == 4
        assert len(batcher) == 0

    def test_partial_batch_waits_for_deadline(self):
        batcher = MicroBatcher(max_batch=4, max_wait=3)
        batcher.submit(_request("a", arrival=0))
        assert batcher.poll(now=0) == []
        assert batcher.poll(now=2) == []
        batches = batcher.poll(now=3)
        assert len(batches) == 1
        assert batches[0].ids == ["a"]

    def test_zero_wait_releases_every_poll(self):
        batcher = MicroBatcher(max_batch=8, max_wait=0)
        batcher.submit(_request("a"))
        assert len(batcher.poll(now=0)) == 1

    def test_overflow_cut_into_multiple_batches(self):
        batcher = MicroBatcher(max_batch=4, max_wait=0)
        for i in range(10):
            batcher.submit(_request(i))
        batches = batcher.poll(now=0)
        assert [batch.size for batch in batches] == [4, 4, 2]

    def test_flush_forces_everything_out(self):
        batcher = MicroBatcher(max_batch=4, max_wait=100)
        for i in range(6):
            batcher.submit(_request(i))
        batches = batcher.flush(now=0)
        assert [batch.size for batch in batches] == [4, 2]
        assert len(batcher) == 0


class TestCanonicalOrder:
    def test_same_tick_submissions_are_order_invariant(self):
        """Any permutation of same-tick arrivals forms identical batches."""
        ids = [f"r{i}" for i in range(9)]
        forward, backward = MicroBatcher(4, 0), MicroBatcher(4, 0)
        for rid in ids:
            forward.submit(_request(rid))
        for rid in reversed(ids):
            backward.submit(_request(rid))
        cuts_f = [batch.ids for batch in forward.poll(now=0)]
        cuts_b = [batch.ids for batch in backward.poll(now=0)]
        assert cuts_f == cuts_b

    def test_earlier_arrivals_batch_first(self):
        batcher = MicroBatcher(max_batch=2, max_wait=0)
        batcher.submit(_request("late", arrival=5))
        batcher.submit(_request("early", arrival=1))
        (batch,) = batcher.poll(now=5)
        assert batch.ids == ["early", "late"]


class TestBatch:
    def test_inputs_stacks_payloads(self):
        batch = Batch([_request("a", value=1.0), _request("b", value=2.0)], formed=0)
        stacked = batch.inputs()
        assert stacked.shape == (2, 3)
        assert np.array_equal(stacked[0], np.full(3, 1.0))

    def test_queue_ticks(self):
        batch = Batch([_request("a", arrival=2), _request("b", arrival=5)], formed=7)
        assert batch.max_queue_ticks() == 5


class TestValidation:
    def test_bad_max_batch_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0)

    def test_negative_wait_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=1, max_wait=-1)
