"""Unit tests for repro.obs tracing, clocks, and exporters."""

import io
import json

import numpy as np
import pytest

from repro.obs import (
    BENCH_SCHEMA,
    BenchRecorder,
    FakeClock,
    MetricsRegistry,
    MonotonicClock,
    NULL_SPAN,
    NullRecorder,
    Observability,
    SpanRecorder,
    to_prometheus,
)


class TestClocks:
    def test_monotonic_clock_advances(self):
        clock = MonotonicClock()
        assert clock.now() <= clock.now()

    def test_fake_clock_steps_per_read(self):
        clock = FakeClock(start=10.0, step=0.5)
        assert clock.now() == 10.0
        assert clock.now() == 10.5
        assert clock.reads == 2

    def test_fake_clock_advance(self):
        clock = FakeClock()
        clock.advance(3.0)
        assert clock.now() == 3.0

    def test_fake_clock_rejects_negative(self):
        with pytest.raises(ValueError):
            FakeClock(step=-1.0)
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)


class TestSpanRecorder:
    def test_span_measures_fake_clock_exactly(self):
        recorder = SpanRecorder(clock=FakeClock(step=0.25))
        with recorder.span("forward", chip="chip00") as span:
            span.set(rows=8)
        [recorded] = recorder.spans
        assert recorded.name == "forward"
        assert recorded.duration == 0.25  # exactly one step between reads
        assert recorded.attrs == {"chip": "chip00", "rows": 8}

    def test_event_is_zero_duration(self):
        recorder = SpanRecorder(clock=FakeClock(step=1.0))
        recorder.event("enqueue", request="r0")
        [span] = recorder.spans
        assert span.duration == 0.0
        assert span.as_dict()["request"] == "r0"

    def test_bounded_with_dropped_counter(self):
        recorder = SpanRecorder(clock=FakeClock(), max_spans=3)
        for index in range(5):
            recorder.event(f"e{index}")
        assert len(recorder) == 3
        assert recorder.dropped == 2
        assert [span.name for span in recorder.spans] == ["e2", "e3", "e4"]

    def test_named_filters(self):
        recorder = SpanRecorder(clock=FakeClock())
        recorder.event("a")
        recorder.event("b")
        recorder.event("a")
        assert len(recorder.named("a")) == 2

    def test_breakdown_aggregates_per_stage(self):
        recorder = SpanRecorder(clock=FakeClock(step=0.1))
        for _ in range(3):
            with recorder.span("forward"):
                pass
        breakdown = recorder.breakdown()
        assert breakdown["forward"]["count"] == 3
        assert breakdown["forward"]["total_s"] == pytest.approx(0.3)
        assert breakdown["forward"]["mean_s"] == pytest.approx(0.1)
        assert breakdown["forward"]["max_s"] == pytest.approx(0.1)

    def test_export_jsonl_to_path_and_fileobj(self, tmp_path):
        recorder = SpanRecorder(clock=FakeClock(step=0.5))
        with recorder.span("program", chip="chip01"):
            pass
        path = tmp_path / "trace.jsonl"
        assert recorder.export_jsonl(path) == 1
        [line] = path.read_text().splitlines()
        record = json.loads(line)
        assert record["name"] == "program"
        assert record["duration"] == 0.5
        buffer = io.StringIO()
        assert recorder.export_jsonl(buffer) == 1
        assert json.loads(buffer.getvalue())["chip"] == "chip01"

    def test_clear_resets(self):
        recorder = SpanRecorder(clock=FakeClock(), max_spans=1)
        recorder.event("a")
        recorder.event("b")
        recorder.clear()
        assert len(recorder) == 0
        assert recorder.dropped == 0

    def test_rejects_bad_max_spans(self):
        with pytest.raises(ValueError):
            SpanRecorder(max_spans=0)


class TestNullRecorder:
    def test_everything_is_a_noop(self, tmp_path):
        recorder = NullRecorder()
        assert recorder.enabled is False
        with recorder.span("forward") as span:
            assert span is NULL_SPAN
            assert span.set(chip="x") is span
        recorder.event("enqueue")
        assert recorder.spans == []
        assert recorder.named("forward") == []
        assert recorder.breakdown() == {}
        assert len(recorder) == 0
        assert recorder.export_jsonl(tmp_path / "empty.jsonl") == 0

    def test_shared_null_span_instance(self):
        recorder = NullRecorder()
        assert recorder.span("a") is recorder.span("b")


class TestObservability:
    def test_default_is_tracing(self):
        obs = Observability.default()
        assert obs.tracing is True
        with obs.span("stage"):
            pass
        assert len(obs.recorder) == 1

    def test_disabled_uses_null_recorder(self):
        obs = Observability.disabled()
        assert obs.tracing is False
        assert isinstance(obs.recorder, NullRecorder)
        obs.event("stage")
        assert len(obs.recorder) == 0

    def test_shares_clock_with_recorder(self):
        clock = FakeClock(step=1.0)
        obs = Observability(clock=clock)
        assert obs.recorder.clock is clock
        assert obs.clock is clock

    def test_metrics_stay_live_without_tracing(self):
        obs = Observability.disabled()
        obs.registry.counter("requests").inc()
        assert obs.registry.get("requests").value == 1


class TestPrometheusExport:
    def test_counter_gauge_histogram_exposition(self):
        registry = MetricsRegistry()
        registry.counter("serve_requests_total", "requests").inc(7)
        registry.gauge("queue.depth").set(2.5)
        histogram = registry.histogram("latency-s", lo=1e-3, hi=1.0)
        histogram.observe(0.02)
        histogram.observe(0.5)
        text = to_prometheus(registry)
        assert "# TYPE serve_requests_total counter" in text
        assert "serve_requests_total 7" in text
        assert "queue_depth 2.5" in text  # sanitized name
        assert "# TYPE latency_s histogram" in text
        assert 'latency_s_bucket{le="+Inf"} 2' in text
        assert "latency_s_count 2" in text
        # Cumulative bucket counts are non-decreasing.
        counts = [
            int(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("latency_s_bucket")
        ]
        assert counts == sorted(counts)

    def test_empty_registry_renders_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestBenchRecorder:
    def test_writes_schema_versioned_file(self, tmp_path):
        path = tmp_path / "BENCH_serving.json"
        recorder = BenchRecorder(path, bench="serving")
        run = recorder.record({"throughput_sps": 100.0}, scale={"requests": 48})
        payload = json.loads(path.read_text())
        assert payload["schema"] == BENCH_SCHEMA
        assert payload["bench"] == "serving"
        assert payload["runs"][0]["metrics"]["throughput_sps"] == 100.0
        assert payload["runs"][0]["scale"]["requests"] == 48
        assert run["git_sha"]

    def test_appends_a_trajectory(self, tmp_path):
        path = tmp_path / "BENCH_serving.json"
        for value in (1.0, 2.0, 3.0):
            BenchRecorder(path, bench="serving").record({"speedup": value})
        runs = BenchRecorder(path, bench="serving").runs()
        assert [run["metrics"]["speedup"] for run in runs] == [1.0, 2.0, 3.0]
        assert BenchRecorder(path, bench="serving").latest()["metrics"]["speedup"] == 3.0

    def test_bounded_to_max_runs(self, tmp_path):
        path = tmp_path / "BENCH.json"
        recorder = BenchRecorder(path, bench="serving", max_runs=2)
        for value in (1.0, 2.0, 3.0):
            recorder.record({"v": value})
        assert [run["metrics"]["v"] for run in recorder.runs()] == [2.0, 3.0]

    def test_foreign_schema_replaced_not_merged(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps({"schema": "other/v9", "runs": [{"x": 1}]}))
        BenchRecorder(path, bench="serving").record({"v": 1.0})
        payload = json.loads(path.read_text())
        assert payload["schema"] == BENCH_SCHEMA
        assert len(payload["runs"]) == 1

    def test_bench_name_mismatch_starts_fresh(self, tmp_path):
        path = tmp_path / "BENCH.json"
        BenchRecorder(path, bench="serving").record({"v": 1.0})
        BenchRecorder(path, bench="lifetime").record({"v": 2.0})
        payload = json.loads(path.read_text())
        assert payload["bench"] == "lifetime"
        assert len(payload["runs"]) == 1

    def test_numpy_metrics_fail_fast(self, tmp_path):
        recorder = BenchRecorder(tmp_path / "BENCH.json", bench="serving")
        with pytest.raises(TypeError):
            recorder.record({"throughput": np.float32(1.0)})

    def test_rejects_bad_max_runs(self, tmp_path):
        with pytest.raises(ValueError):
            BenchRecorder(tmp_path / "b.json", bench="serving", max_runs=0)
