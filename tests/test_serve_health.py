"""Tests for the per-chip health state machine and health-aware routing."""

import numpy as np
import pytest

from repro.datasets.loaders import batch_iterator
from repro.datasets.synthetic import make_pattern_dataset
from repro.models import build_model
from repro.nn import init
from repro.quant.calibration import calibrate_model
from repro.quant.ptq import convert_to_quantized
from repro.quant.qconfig import QConfig
from repro.serve import (
    HEALTH_STATES,
    SERVING_STATES,
    HealthConfig,
    HealthMonitor,
    InferenceEngine,
    ServeConfig,
    dispatchable,
)
from repro.variability.models import WeightProportionalVariance
from repro.variability.sampler import VariabilitySpec


class FakeChip:
    def __init__(self, chip_id="chip00", index=0):
        self.chip_id = chip_id
        self.index = index
        self.health = "healthy"
        self.served_samples = 0


@pytest.fixture(scope="module")
def served_model():
    init.seed(0)
    dataset = make_pattern_dataset(5, 16, (1, 28, 28), seed=7, max_shift=1, noise=0.2)
    model = build_model("lenet5-mini", num_classes=5, in_channels=1)
    convert_to_quantized(model, QConfig.from_notation("A4W2"))
    calibrate_model(model, batch_iterator(dataset, 16, shuffle=False), max_batches=3)
    model.eval()
    return model, dataset


def _engine(model, num_chips=3, **config):
    config.setdefault("max_batch", 4)
    config.setdefault("max_wait", 1)
    spec = VariabilitySpec.mixed(0.2, WeightProportionalVariance())
    return InferenceEngine(
        model, spec, num_chips=num_chips, config=ServeConfig(**config)
    )


class TestConfigValidation:
    def test_thresholds_must_be_positive(self):
        with pytest.raises(ValueError):
            HealthConfig(quarantine_after=0)
        with pytest.raises(ValueError):
            HealthConfig(recover_after=0)
        with pytest.raises(ValueError):
            HealthConfig(quarantine_ticks=0)
        with pytest.raises(ValueError):
            HealthConfig(retire_after=0)

    def test_probe_floor_range(self):
        with pytest.raises(ValueError):
            HealthConfig(probe_floor=1.5)
        HealthConfig(probe_floor=0.5)  # valid


class TestStateMachine:
    def test_states_cover_the_documented_ladder(self):
        assert HEALTH_STATES == ("healthy", "degraded", "quarantined", "retired", "replaced")
        assert SERVING_STATES == {"healthy", "degraded"}

    def test_single_failure_degrades(self):
        monitor = HealthMonitor(HealthConfig(quarantine_after=3))
        chip = FakeChip()
        monitor.on_failure(chip, tick=1)
        assert chip.health == "degraded"
        assert monitor.transitions[-1].reason == "dispatch-error"

    def test_failure_streak_quarantines(self):
        monitor = HealthMonitor(HealthConfig(quarantine_after=2))
        chip = FakeChip()
        monitor.on_failure(chip, tick=1)
        monitor.on_failure(chip, tick=2)
        assert chip.health == "quarantined"

    def test_success_breaks_the_failure_streak(self):
        monitor = HealthMonitor(HealthConfig(quarantine_after=2))
        chip = FakeChip()
        monitor.on_failure(chip, tick=1)
        monitor.on_success(chip, tick=2)
        monitor.on_failure(chip, tick=3)
        assert chip.health == "degraded"  # streak reset: no quarantine

    def test_recovery_needs_consecutive_successes(self):
        monitor = HealthMonitor(HealthConfig(recover_after=3))
        chip = FakeChip()
        monitor.on_failure(chip, tick=0)
        for tick in range(1, 3):
            monitor.on_success(chip, tick=tick)
            assert chip.health == "degraded"
        monitor.on_success(chip, tick=3)
        assert chip.health == "healthy"

    def test_quarantine_releases_on_probation_after_sitout(self):
        monitor = HealthMonitor(HealthConfig(quarantine_after=1, quarantine_ticks=4))
        chip = FakeChip()
        monitor.on_failure(chip, tick=2)
        assert chip.health == "quarantined"
        monitor.on_tick(3, [chip])
        assert chip.health == "quarantined"  # sit-out not served yet
        monitor.on_tick(6, [chip])
        assert chip.health == "degraded"
        assert monitor.transitions[-1].reason == "probation"

    def test_flapping_chip_retires(self):
        monitor = HealthMonitor(
            HealthConfig(quarantine_after=1, quarantine_ticks=1, retire_after=2)
        )
        chip = FakeChip()
        for round_ in range(2):
            monitor.on_failure(chip, tick=10 * round_)
            assert chip.health == "quarantined"
            monitor.on_tick(10 * round_ + 2, [chip])
        monitor.on_failure(chip, tick=30)  # third quarantine > retire_after
        assert chip.health == "retired"
        assert monitor.transitions[-1].reason == "flapping"

    def test_death_retires_immediately(self):
        monitor = HealthMonitor()
        chip = FakeChip()
        monitor.on_death(chip, tick=5)
        assert chip.health == "retired"
        assert monitor.transitions[-1].reason == "dead"

    def test_retired_chip_ignores_further_signals(self):
        monitor = HealthMonitor()
        chip = FakeChip()
        monitor.on_death(chip, tick=1)
        monitor.on_failure(chip, tick=2)
        monitor.on_death(chip, tick=3)
        assert chip.health == "retired"
        assert len(monitor.transitions) == 1

    def test_fault_event_degrades_healthy_only(self):
        monitor = HealthMonitor(HealthConfig(quarantine_after=1))
        chip = FakeChip()
        monitor.on_fault_event(chip, tick=1, kind="stuck-at:12")
        assert chip.health == "degraded"
        monitor.on_fault_event(chip, tick=2, kind="stuck-at:3")
        assert chip.health == "degraded"  # no double penalty

    def test_probe_floor_feeds_the_machine(self):
        monitor = HealthMonitor(HealthConfig(probe_floor=0.5, quarantine_after=2))
        chip = FakeChip()
        monitor.on_probe(chip, quality=0.3, tick=1)
        assert chip.health == "degraded"
        monitor.on_probe(chip, quality=0.9, tick=2)  # breaks the streak
        monitor.on_probe(chip, quality=0.3, tick=3)
        assert chip.health == "degraded"

    def test_probe_without_floor_is_inert(self):
        monitor = HealthMonitor(HealthConfig())
        chip = FakeChip()
        monitor.on_probe(chip, quality=0.0, tick=1)
        assert chip.health == "healthy"

    def test_mark_replaced_is_terminal_and_adopt_restarts(self):
        monitor = HealthMonitor()
        old, new = FakeChip("chip00"), FakeChip("chip00+1")
        monitor.on_death(old, tick=1)
        monitor.mark_replaced(old, tick=1)
        assert old.health == "replaced"
        record = monitor.adopt(new)
        assert new.health == "healthy"
        assert record.failures == 0

    def test_summary_groups_by_state(self):
        monitor = HealthMonitor()
        a, b = FakeChip("a"), FakeChip("b")
        monitor.on_success(a, tick=0)
        monitor.on_death(b, tick=0)
        assert monitor.summary() == {"healthy": ["a"], "retired": ["b"]}


class TestDispatchable:
    def test_filters_non_serving_states(self):
        chips = [FakeChip(f"c{i}", i) for i in range(5)]
        chips[1].health = "quarantined"
        chips[2].health = "retired"
        chips[3].health = "replaced"
        chips[4].health = "degraded"
        assert [c.chip_id for c in dispatchable(chips)] == ["c0", "c4"]


class TestEngineIntegration:
    def test_replacement_invalidates_only_dead_chip_cache(self, served_model):
        model, _ = served_model
        engine = _engine(model, num_chips=3)
        engine.warm_up()
        assert len(engine.cache) == 3
        victim = engine.fleet[1]
        replacement = engine.replace_chip(victim, reason="test")
        assert engine.cache.stats.invalidations == 1
        resident = {key[-1] for key in engine.cache.keys}
        assert victim.chip_id not in resident
        assert engine.fleet[0].chip_id in resident
        assert engine.fleet[2].chip_id in resident
        assert replacement.chip_id == f"{victim.chip_id}+1"
        assert replacement.index == victim.index
        assert victim.health == "replaced"
        assert engine.retired == [victim]

    def test_replacement_is_fresh_deterministic_silicon(self, served_model):
        model, _ = served_model

        def replace(seed):
            engine = _engine(model, num_chips=2, seed=seed)
            victim = engine.fleet[0]
            original_eps = victim.variation.eps_between
            replacement = engine.replace_chip(victim)
            return original_eps, replacement.variation.eps_between

        old_a, new_a = replace(seed=5)
        old_b, new_b = replace(seed=5)
        assert new_a != old_a  # genuinely fresh silicon
        assert new_a == new_b  # ... deterministically so

    def test_second_replacement_bumps_generation(self, served_model):
        model, _ = served_model
        engine = _engine(model, num_chips=2)
        first = engine.replace_chip(engine.fleet[0])
        second = engine.replace_chip(first)
        base = engine.retired[0].chip_id
        assert first.chip_id == f"{base}+1"
        assert second.chip_id == f"{base}+2"
        assert first.variation.eps_between != second.variation.eps_between

    def test_retire_dead_without_spares_shrinks_capacity(self, served_model):
        model, dataset = served_model
        engine = _engine(
            model, num_chips=2, health=HealthConfig(replace_retired=False)
        )
        victim = engine.fleet[0]
        assert engine.retire_dead(victim) is None
        assert victim.health == "retired"
        assert victim in engine.fleet  # stays in roster, out of rotation
        assert [c.chip_id for c in dispatchable(engine.fleet)] == [
            engine.fleet[1].chip_id
        ]
        outputs = engine.run(dataset.images[:4], ids=["a", "b", "c", "d"])
        assert set(outputs) == {"a", "b", "c", "d"}
        assert engine.fleet[1].served_samples == 4

    def test_health_transitions_land_in_telemetry(self, served_model):
        model, _ = served_model
        engine = _engine(model, num_chips=2)
        engine.retire_dead(engine.fleet[0])
        report = engine.telemetry.report()
        targets = [t["target"] for t in report["faults"]["health_transitions"]]
        assert "retired" in targets and "replaced" in targets
        assert report["faults"]["replacements"]
