"""Tests for live fault injection: chaos schedules, retries, dead letters.

Mirrors the determinism discipline of ``tests/test_serve_lifecycle.py``:
everything observable about a chaos run — the fault schedule, the retry
counts, the dead-letter set, and every served logit row — must be a pure
function of ``(engine seed, fault seed, trace)``.
"""

import numpy as np
import pytest

from repro.datasets.loaders import batch_iterator
from repro.datasets.synthetic import make_pattern_dataset
from repro.models import build_model
from repro.nn import init
from repro.quant.calibration import calibrate_model
from repro.quant.ptq import convert_to_quantized
from repro.quant.qconfig import QConfig
from repro.serve import (
    ChipFault,
    FaultInjector,
    FaultPlan,
    HealthConfig,
    InferenceEngine,
    ReplayTrace,
    RetryPolicy,
    ServeConfig,
    UniformTrace,
)
from repro.variability.faults import FaultSpec
from repro.variability.models import WeightProportionalVariance
from repro.variability.sampler import VariabilitySpec


@pytest.fixture(scope="module")
def served_model():
    init.seed(0)
    dataset = make_pattern_dataset(5, 16, (1, 28, 28), seed=7, max_shift=1, noise=0.2)
    model = build_model("lenet5-mini", num_classes=5, in_channels=1)
    convert_to_quantized(model, QConfig.from_notation("A4W2"))
    calibrate_model(model, batch_iterator(dataset, 16, shuffle=False), max_batches=3)
    model.eval()
    return model, dataset


def _spec(sigma=0.2):
    return VariabilitySpec.mixed(sigma, WeightProportionalVariance())


def _engine(model, num_chips=4, **config):
    config.setdefault("max_batch", 4)
    config.setdefault("max_wait", 1)
    return InferenceEngine(
        model, _spec(), num_chips=num_chips, config=ServeConfig(**config)
    )


def _workload(dataset, requests):
    reps = 1 + (requests - 1) // len(dataset.images)
    inputs = np.concatenate([dataset.images] * reps)[:requests]
    ids = [f"r{i:04d}" for i in range(requests)]
    return inputs, ids


class TestValidation:
    def test_plan_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            FaultPlan(transient_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan(latency_rate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(deaths=-1)
        with pytest.raises(ValueError):
            FaultPlan(horizon=0)

    def test_retry_policy_rejects_bad_budgets(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_ticks=0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(backoff_base=1, backoff_factor=2.0, max_backoff=5)
        assert [policy.backoff_for(c) for c in (1, 2, 3, 4)] == [1, 2, 4, 5]

    def test_plan_larger_than_fleet_rejected(self, served_model):
        model, _ = served_model
        engine = _engine(model, num_chips=2)
        with pytest.raises(ValueError, match="victim"):
            FaultInjector(engine, FaultPlan(deaths=2, stuck_chips=1)).install()

    def test_double_install_rejected(self, served_model):
        model, _ = served_model
        engine = _engine(model)
        injector = FaultInjector(engine, FaultPlan(deaths=0, stuck_chips=0))
        injector.install()
        with pytest.raises(RuntimeError, match="installed"):
            injector.install()


class TestSchedule:
    def test_schedule_is_deterministic_per_seed(self, served_model):
        model, _ = served_model

        def compile_schedule(fault_seed):
            engine = _engine(model, num_chips=6)
            injector = FaultInjector(
                engine, FaultPlan(deaths=2, stuck_chips=2, seed=fault_seed)
            )
            return injector.install()

        assert compile_schedule(7) == compile_schedule(7)
        assert compile_schedule(7) != compile_schedule(8)

    def test_victims_are_distinct_and_ticks_in_horizon(self, served_model):
        model, _ = served_model
        engine = _engine(model, num_chips=6)
        plan = FaultPlan(deaths=2, stuck_chips=3, horizon=9, seed=3)
        schedule = FaultInjector(engine, plan).install()
        victims = [event.chip_id for event in schedule]
        assert len(set(victims)) == len(victims) == 5
        assert all(1 <= event.tick <= 9 for event in schedule)
        assert sorted(event.tick for event in schedule) == [e.tick for e in schedule]


class TestChaosDeterminism:
    """Same (engine seed, fault seed, trace) => bit-identical chaos story."""

    def _run(self, served_model, seed=5, fault_seed=11, requests=48):
        model, dataset = served_model
        engine = _engine(model, num_chips=4, seed=seed)
        injector = FaultInjector(
            engine,
            FaultPlan(transient_rate=0.15, deaths=1, stuck_chips=1,
                      horizon=8, seed=fault_seed),
        )
        injector.install()
        inputs, ids = _workload(dataset, requests)
        trace = ReplayTrace.from_trace(UniformTrace(rate=4.0), requests)
        outputs = engine.run_trace(inputs, trace, ids=ids)
        return engine, injector, outputs, ids

    def test_identical_schedule_retries_dead_letters_outputs(self, served_model):
        engine_a, inj_a, out_a, ids = self._run(served_model)
        engine_b, inj_b, out_b, _ = self._run(served_model)
        assert inj_a.schedule == inj_b.schedule
        assert engine_a.telemetry.retries == engine_b.telemetry.retries
        assert engine_a.telemetry.hedges == engine_b.telemetry.hedges
        assert set(engine_a.dead_letters) == set(engine_b.dead_letters)
        assert set(out_a) == set(out_b)
        assert all(np.array_equal(out_a[rid], out_b[rid]) for rid in out_a)
        transitions_a = [(t.tick, t.chip_id, t.target) for t in engine_a.health.transitions]
        transitions_b = [(t.tick, t.chip_id, t.target) for t in engine_b.health.transitions]
        assert transitions_a == transitions_b

    def test_different_fault_seed_changes_the_story(self, served_model):
        _, inj_a, _, _ = self._run(served_model, fault_seed=11)
        _, inj_b, _, _ = self._run(served_model, fault_seed=12)
        assert inj_a.schedule != inj_b.schedule

    def test_every_request_is_served_or_dead_lettered(self, served_model):
        engine, _, outputs, ids = self._run(served_model)
        assert set(outputs) | set(engine.dead_letters) == set(ids)
        assert not set(outputs) & set(engine.dead_letters)


class TestRetryAndDeadLetter:
    def test_transients_are_absorbed_by_retries(self, served_model):
        """Moderate transient rate + hedging: everything still gets served."""
        model, dataset = served_model
        engine = _engine(model, num_chips=4, seed=2)
        FaultInjector(
            engine, FaultPlan(transient_rate=0.3, deaths=0, stuck_chips=0, seed=1)
        ).install()
        inputs, ids = _workload(dataset, 32)
        outputs = engine.run(inputs, ids=ids)
        assert set(outputs) == set(ids)
        assert engine.telemetry.faults > 0  # the run genuinely saw transients
        assert engine.telemetry.goodput == 1.0

    def test_dead_fleet_dead_letters_instead_of_raising(self, served_model):
        """With every chip dead and no spares, requests exhaust their retry
        budget and land in dead_letters — the engine never raises."""
        model, dataset = served_model
        engine = _engine(
            model, num_chips=1, seed=2,
            health=HealthConfig(replace_retired=False),
            retry=RetryPolicy(max_attempts=2, hedge=False),
        )
        engine.warm_up()
        FaultInjector(
            engine,
            FaultPlan(transient_rate=0.0, deaths=1, stuck_chips=0, horizon=1, seed=0),
        ).install()
        inputs, ids = _workload(dataset, 8)
        trace = ReplayTrace(tuple([2] * len(ids)))  # arrive after the death
        outputs = engine.run_trace(inputs, trace, ids=ids)
        assert outputs == {}
        assert set(engine.dead_letters) == set(ids)
        for letter in engine.dead_letters.values():
            assert letter.reason == "retries-exhausted"
            assert letter.cause in ("dead", "no-capacity")
            assert letter.attempts == 2
        assert engine.telemetry.goodput == 0.0

    def test_timeout_dead_letters_early(self, served_model):
        model, dataset = served_model
        engine = _engine(
            model, num_chips=1, seed=2,
            health=HealthConfig(replace_retired=False),
            retry=RetryPolicy(max_attempts=10, hedge=False, timeout_ticks=3),
        )
        engine.warm_up()
        FaultInjector(
            engine, FaultPlan(transient_rate=0.0, deaths=1, stuck_chips=0,
                              horizon=1, seed=0),
        ).install()
        inputs, ids = _workload(dataset, 4)
        outputs = engine.run_trace(inputs, ReplayTrace(tuple([2] * 4)), ids=ids)
        assert outputs == {}
        assert all(l.reason == "timeout" for l in engine.dead_letters.values())
        assert all(l.attempts < 10 for l in engine.dead_letters.values())

    def test_death_triggers_spare_provisioning_and_serving_continues(self, served_model):
        model, dataset = served_model
        engine = _engine(model, num_chips=2, seed=4)
        FaultInjector(
            engine, FaultPlan(transient_rate=0.0, deaths=1, stuck_chips=0,
                              horizon=2, seed=6),
        ).install()
        inputs, ids = _workload(dataset, 24)
        trace = ReplayTrace.from_trace(UniformTrace(rate=3.0), 24)
        outputs = engine.run_trace(inputs, trace, ids=ids)
        assert set(outputs) == set(ids)
        assert len(engine.retired) == 1
        dead = engine.retired[0]
        assert dead.health == "replaced"
        replacement = engine.fleet[dead.index]
        assert replacement.chip_id == f"{dead.chip_id}+1"
        # the replacement actually serves (it is in the load report)
        assert engine.telemetry.per_chip_samples.get(replacement.chip_id, 0) > 0


class TestStickyFaults:
    def test_stuck_cells_survive_reprogramming(self, served_model):
        """Reprogramming (recalibration / cache eviction) must re-apply the
        chip's fault map: stuck cells are physical damage."""
        model, dataset = served_model
        engine = _engine(model, num_chips=1, seed=9)
        chip = engine.fleet[0]
        x = dataset.images[:4]
        stuck = engine.inject_chip_faults(chip, FaultSpec(0.05, 0.02), seed=13)
        assert stuck > 0
        faulted = engine.programmed_for(chip).forward(x)
        engine.reprogram(chip)  # full rewrite through the backend
        rewritten = engine.programmed_for(chip).forward(x)
        assert np.array_equal(faulted, rewritten)

    def test_faults_change_outputs(self, served_model):
        model, dataset = served_model
        engine = _engine(model, num_chips=1, seed=9)
        chip = engine.fleet[0]
        x = dataset.images[:4]
        clean = engine.programmed_for(chip).forward(x)
        engine.inject_chip_faults(chip, FaultSpec(0.1, 0.05), seed=13)
        assert not np.array_equal(engine.programmed_for(chip).forward(x), clean)

    def test_replacement_sheds_the_fault_map(self, served_model):
        model, _ = served_model
        engine = _engine(model, num_chips=1, seed=9)
        chip = engine.fleet[0]
        engine.inject_chip_faults(chip, FaultSpec(0.05, 0.02), seed=13)
        assert chip.chip_id in engine._sticky_faults
        replacement = engine.replace_chip(chip)
        assert chip.chip_id not in engine._sticky_faults
        assert replacement.chip_id not in engine._sticky_faults


class TestHazards:
    def test_dead_chip_raises_chip_fault(self, served_model):
        model, _ = served_model
        engine = _engine(model, num_chips=2)
        injector = FaultInjector(
            engine, FaultPlan(transient_rate=0.0, deaths=0, stuck_chips=0)
        )
        injector.install()
        injector._dead.add(engine.fleet[0].chip_id)
        with pytest.raises(ChipFault) as excinfo:
            injector.before_forward(engine.fleet[0])
        assert excinfo.value.kind == "dead"

    def test_latency_spike_returns_penalty_not_failure(self, served_model):
        model, _ = served_model
        engine = _engine(model, num_chips=2)
        injector = FaultInjector(
            engine,
            FaultPlan(transient_rate=0.0, latency_rate=0.999, latency_seconds=0.25,
                      deaths=0, stuck_chips=0),
        )
        injector.install()
        penalties = [injector.before_forward(engine.fleet[0]) for _ in range(8)]
        assert 0.25 in penalties
        assert engine.telemetry.fault_counts["latency-spike"] > 0


class TestChaosSmoke:
    """The PR's acceptance scenario: 16 chips, default fault mix."""

    def test_goodput_floor_on_16_chip_fleet(self, served_model):
        model, dataset = served_model
        engine = _engine(model, num_chips=16, max_batch=8, seed=0)
        FaultInjector(engine, FaultPlan(seed=0)).install()  # default mix
        inputs, ids = _workload(dataset, 96)
        trace = ReplayTrace.from_trace(UniformTrace(rate=8.0), 96)
        outputs = engine.run_trace(inputs, trace, ids=ids)
        assert len(outputs) + len(engine.dead_letters) == len(ids)
        assert engine.telemetry.goodput >= 0.95
        summary = engine.health.summary()
        assert "replaced" in summary  # the scheduled death fired
